//! The simulated disk device: a clock, a head position, and a track
//! buffer.
//!
//! All service times are computed from first principles: seek (distance
//! curve), rotational positioning (angular slot of the target sector at
//! the time the head arrives), and media streaming (sectors passing under
//! the head, plus head/cylinder switch times). Reads feed a 512 KB
//! read-ahead buffer that continues streaming while the host thinks;
//! writes are unbuffered, so a back-to-back sequential write stream loses
//! most of a rotation per request.

use ffs_types::{DiskParams, FsError};

use crate::fault::{FaultInjector, FaultPlan};
use crate::geometry::Geometry;
use crate::seek::SeekCurve;
use crate::trace::{IoTrace, TraceEvent};

/// Direction of a transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoKind {
    /// A read from media (or the track buffer).
    Read,
    /// A write to media.
    Write,
}

/// Aggregate counters kept by the device, for tests and reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeviceStats {
    /// Read requests serviced.
    pub reads: u64,
    /// Write requests serviced.
    pub writes: u64,
    /// Sectors read.
    pub sectors_read: u64,
    /// Sectors written.
    pub sectors_written: u64,
    /// Read requests satisfied (at least partly) by the track buffer.
    pub buffer_hits: u64,
    /// Requests that required a non-zero seek.
    pub seeks: u64,
    /// Total time spent seeking, in microseconds.
    pub seek_time_us: f64,
    /// Total rotational-positioning wait, in microseconds.
    pub rot_wait_us: f64,
    /// Total media streaming time, in microseconds.
    pub stream_time_us: f64,
    /// Transient (retryable) device errors injected.
    pub transient_errors: u64,
    /// Retries performed, across transient errors and latent-defect
    /// discovery.
    pub retries: u64,
    /// Sectors remapped to spares after a latent defect.
    pub remaps: u64,
    /// Time lost to retries (one revolution each), in microseconds.
    pub retry_time_us: f64,
}

impl DeviceStats {
    /// Adds every counter of `other` into `self`, so the totals of
    /// several independent device runs can be reported as one.
    /// Counts saturate at `u64::MAX` rather than wrapping.
    pub fn merge(&mut self, other: &DeviceStats) {
        self.reads = self.reads.saturating_add(other.reads);
        self.writes = self.writes.saturating_add(other.writes);
        self.sectors_read = self.sectors_read.saturating_add(other.sectors_read);
        self.sectors_written = self.sectors_written.saturating_add(other.sectors_written);
        self.buffer_hits = self.buffer_hits.saturating_add(other.buffer_hits);
        self.seeks = self.seeks.saturating_add(other.seeks);
        self.seek_time_us += other.seek_time_us;
        self.rot_wait_us += other.rot_wait_us;
        self.stream_time_us += other.stream_time_us;
        self.transient_errors = self.transient_errors.saturating_add(other.transient_errors);
        self.retries = self.retries.saturating_add(other.retries);
        self.remaps = self.remaps.saturating_add(other.remaps);
        self.retry_time_us += other.retry_time_us;
    }
}

/// Read-ahead state: the drive keeps streaming sequentially from the last
/// media read, bounded by the track-buffer capacity ahead of the furthest
/// sector the host has consumed.
#[derive(Clone, Debug)]
struct ReadAhead {
    /// First LBA still held in the buffer.
    buf_start: u64,
    /// Exclusive end of the data read from media so far.
    frontier: u64,
    /// Simulated time at which `frontier` was reached.
    frontier_time: f64,
    /// Furthest LBA (exclusive) the host has consumed; the frontier may
    /// run at most one buffer-length ahead of this.
    consumed: u64,
}

/// The simulated disk.
#[derive(Clone, Debug)]
pub struct Device {
    geom: Geometry,
    seek: SeekCurve,
    now: f64,
    cur_cyl: u32,
    ra: Option<ReadAhead>,
    stats: DeviceStats,
    buffer_sectors: u64,
    trace: Option<IoTrace>,
    faults: Option<FaultInjector>,
}

impl Device {
    /// Creates a device at time zero with the head parked at cylinder 0.
    pub fn new(params: DiskParams) -> Device {
        let seek = SeekCurve::new(&params);
        let buffer_sectors = (params.track_buffer_bytes / params.sector_size) as u64;
        Device {
            geom: Geometry::new(params),
            seek,
            now: 0.0,
            cur_cyl: 0,
            ra: None,
            stats: DeviceStats::default(),
            buffer_sectors,
            trace: None,
            faults: None,
        }
    }

    /// Installs a fault plan: subsequent I/O may suffer transient errors
    /// (retried at one revolution each) and latent bad sectors (retried,
    /// then remapped to a spare at the end of the volume). Replaces any
    /// previously installed plan and its accumulated remap table.
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        self.faults = Some(FaultInjector::new(plan, self.geom.total_sectors()));
    }

    /// The active fault state, when a plan is installed.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Enables request tracing with a bounded event buffer; pass 0 to
    /// disable again.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = if capacity == 0 {
            None
        } else {
            Some(IoTrace::new(capacity))
        };
    }

    /// The request trace, when enabled.
    pub fn trace(&self) -> Option<&IoTrace> {
        self.trace.as_ref()
    }

    /// Current simulated time in microseconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The device's geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// Counters accumulated since creation.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Advances the clock by host think time (the read-ahead engine keeps
    /// streaming during it).
    pub fn advance(&mut self, us: f64) {
        debug_assert!(us >= 0.0);
        self.now += us;
    }

    /// Rotational wait from time `t` until the angular slot of `lba`
    /// arrives under the head.
    fn rot_wait(&self, t: f64, lba: u64) -> f64 {
        let rev = self.geom.params().rev_time_us();
        let target = self.geom.angular_offset_us(lba);
        let phase = t.rem_euclid(rev);
        (target - phase).rem_euclid(rev)
    }

    /// Moves the read-ahead frontier forward to account for streaming that
    /// happened up to time `t`.
    fn advance_frontier(&mut self, t: f64) {
        let st = self.geom.params().sector_time_us();
        let total = self.geom.total_sectors();
        if let Some(ra) = &mut self.ra {
            let cap = (ra.consumed + self.buffer_sectors).min(total);
            if ra.frontier >= cap || t <= ra.frontier_time {
                return;
            }
            let by_time = ((t - ra.frontier_time) / st).floor() as u64;
            let n = by_time.min(cap - ra.frontier);
            ra.frontier += n;
            ra.frontier_time += n as f64 * st;
        }
    }

    /// Services a read of `sectors` sectors at `lba`; returns the request
    /// latency in microseconds and advances the clock to completion.
    ///
    /// Panics on an unrecoverable device error, which only a fault plan
    /// with an exhausted spare pool (or an absurd transient rate) can
    /// produce; fault-aware callers use [`Device::try_read`].
    pub fn read(&mut self, lba: u64, sectors: u32) -> f64 {
        self.try_read(lba, sectors)
            .expect("unrecoverable device read error")
    }

    /// Fallible read: like [`Device::read`], but an access that exhausts
    /// its retries with no spare sector left surfaces as [`FsError::Io`].
    pub fn try_read(&mut self, lba: u64, sectors: u32) -> Result<f64, FsError> {
        self.try_io(IoKind::Read, lba, sectors)
    }

    /// Fallible write: like [`Device::write`], but an access that
    /// exhausts its retries with no spare sector left surfaces as
    /// [`FsError::Io`].
    pub fn try_write(&mut self, lba: u64, sectors: u32) -> Result<f64, FsError> {
        self.try_io(IoKind::Write, lba, sectors)
    }

    /// Common fault-handling path: splits the request into physically
    /// contiguous runs under the remap table, then services each run with
    /// bounded retry and remap-on-latent-defect.
    fn try_io(&mut self, kind: IoKind, lba: u64, sectors: u32) -> Result<f64, FsError> {
        let Some(mut inj) = self.faults.take() else {
            return Ok(match kind {
                IoKind::Read => self.service_read(lba, sectors),
                IoKind::Write => self.service_write(lba, sectors),
            });
        };
        let start = self.now;
        let result = (|| {
            for (run_lba, run_n) in inj.physical_runs(lba, sectors) {
                self.service_run(&mut inj, kind, run_lba, run_n)?;
            }
            Ok(self.now - start)
        })();
        self.faults = Some(inj);
        result
    }

    /// Services one physically contiguous run, discovering and remapping
    /// any latent bad sectors inside it.
    fn service_run(
        &mut self,
        inj: &mut FaultInjector,
        kind: IoKind,
        mut lba: u64,
        mut n: u32,
    ) -> Result<(), FsError> {
        while n > 0 {
            match inj.first_latent_in(lba, n) {
                None => {
                    self.attempt_with_retries(inj, kind, lba, n)?;
                    return Ok(());
                }
                Some(off) => {
                    // The clean prefix streams normally; the bad sector
                    // burns the full retry budget, grows a remap, and is
                    // serviced from its spare.
                    if off > 0 {
                        self.attempt_with_retries(inj, kind, lba, off)?;
                    }
                    let bad = lba + off as u64;
                    self.charge_retries(inj.max_retries());
                    let write = matches!(kind, IoKind::Write);
                    let spare = inj.grow_remap(bad).ok_or(FsError::Io { lba: bad, write })?;
                    self.stats.remaps = self.stats.remaps.saturating_add(1);
                    self.attempt_with_retries(inj, kind, spare, 1)?;
                    lba = bad + 1;
                    n -= off + 1;
                }
            }
        }
        Ok(())
    }

    /// One media access with transient errors retried up to the budget.
    fn attempt_with_retries(
        &mut self,
        inj: &mut FaultInjector,
        kind: IoKind,
        lba: u64,
        n: u32,
    ) -> Result<(), FsError> {
        let mut failures = 0;
        while inj.roll_transient() {
            self.stats.transient_errors = self.stats.transient_errors.saturating_add(1);
            failures += 1;
            if failures > inj.max_retries() {
                let write = matches!(kind, IoKind::Write);
                return Err(FsError::Io { lba, write });
            }
            self.charge_retries(1);
        }
        match kind {
            IoKind::Read => self.service_read(lba, n),
            IoKind::Write => self.service_write(lba, n),
        };
        Ok(())
    }

    /// Charges `n` retry revolutions to the clock and the retry counters.
    fn charge_retries(&mut self, n: u32) {
        let rev = self.geom.params().rev_time_us();
        self.stats.retries = self.stats.retries.saturating_add(n as u64);
        self.stats.retry_time_us += n as f64 * rev;
        self.now += n as f64 * rev;
    }

    /// The fault-free read path.
    fn service_read(&mut self, lba: u64, sectors: u32) -> f64 {
        debug_assert!(sectors > 0);
        debug_assert!(lba + sectors as u64 <= self.geom.total_sectors());
        let start = self.now;
        self.advance_frontier(start);
        let end_lba = lba + sectors as u64;
        // The track buffer serves a request only when it continues the
        // *consumed* stream (or re-reads buffered data). The prefetcher
        // keeps filling the buffer while the host thinks — that is what
        // lets strictly sequential reads run at the media rate — but
        // mid-1990s firmware does not bridge gaps: a request that skips
        // even one sector past the consumed stream repositions
        // mechanically, paying seek plus rotation. This is the mechanism
        // that makes fragmented files slow and contiguous files fast
        // (Section 5.1).
        let hit = match &self.ra {
            Some(ra) => {
                lba >= ra.buf_start
                    && lba <= ra.consumed
                    && end_lba <= ra.frontier + self.buffer_sectors
            }
            None => false,
        };
        if hit {
            self.read_from_buffer(lba, sectors);
        } else {
            self.read_from_media(lba, sectors);
        }
        self.stats.reads = self.stats.reads.saturating_add(1);
        self.stats.sectors_read = self.stats.sectors_read.saturating_add(sectors as u64);
        let latency = self.now - start;
        obs::hist!("disk.read_us", obs::bounds::TIME_US, latency);
        if let Some(t) = &mut self.trace {
            t.push(TraceEvent {
                issued_at: start,
                is_read: true,
                lba,
                sectors,
                latency_us: latency,
                buffer_hit: hit,
            });
        }
        latency
    }

    /// Completion time if the request is served from the read-ahead
    /// stream (no state change).
    fn buffered_completion(&self, lba: u64, sectors: u32) -> f64 {
        let end_lba = lba + sectors as u64;
        let bus_rate = self.geom.params().bus_mb_per_sec * 1024.0 * 1024.0 / 1e6;
        let bytes = sectors as f64 * self.geom.params().sector_size as f64;
        let bus_done = self.now + bytes / bus_rate;
        let ra = self.ra.as_ref().expect("candidate requires read-ahead");
        let media_done = if end_lba <= ra.frontier {
            self.now
        } else {
            let need = (end_lba - ra.frontier) as u32;
            ra.frontier_time + self.geom.stream_time_us(ra.frontier, need)
        };
        bus_done.max(media_done)
    }

    /// `(total, seek, rot, stream)` cost of a fresh mechanical access
    /// starting now (no state change).
    fn mechanical_cost(&self, lba: u64, sectors: u32) -> (f64, f64, f64, f64) {
        let target = self.geom.lba_to_chs(lba);
        let sk = self.seek.seek_us(self.cur_cyl, target.cyl);
        let rot = self.rot_wait(self.now + sk, lba);
        let stream = self.geom.stream_time_us(lba, sectors);
        (sk + rot + stream, sk, rot, stream)
    }

    fn read_from_buffer(&mut self, lba: u64, sectors: u32) {
        let end_lba = lba + sectors as u64;
        let done = self.buffered_completion(lba, sectors);
        let ra = self.ra.as_mut().expect("hit requires read-ahead state");
        if end_lba > ra.frontier {
            ra.frontier = end_lba;
            ra.frontier_time = done;
        }
        ra.consumed = ra.consumed.max(end_lba);
        // Data older than one buffer length behind the consumer is evicted.
        ra.buf_start = ra
            .buf_start
            .max(ra.consumed.saturating_sub(self.buffer_sectors));
        let frontier = ra.frontier;
        self.stats.buffer_hits = self.stats.buffer_hits.saturating_add(1);
        self.now = done.max(self.now);
        self.cur_cyl = self
            .geom
            .lba_to_chs(frontier.min(self.geom.total_sectors() - 1))
            .cyl;
    }

    fn read_from_media(&mut self, lba: u64, sectors: u32) {
        let (total, sk, rot, stream) = self.mechanical_cost(lba, sectors);
        obs::hist!(
            "disk.seek_cyls",
            obs::bounds::POW2,
            (self.geom.lba_to_chs(lba).cyl as i64 - self.cur_cyl as i64).unsigned_abs()
        );
        if sk > 0.0 {
            self.stats.seeks = self.stats.seeks.saturating_add(1);
        }
        let t = self.now + total;
        self.stats.seek_time_us += sk;
        self.stats.rot_wait_us += rot;
        self.stats.stream_time_us += stream;
        let end_lba = lba + sectors as u64;
        self.ra = Some(ReadAhead {
            buf_start: lba,
            frontier: end_lba,
            frontier_time: t,
            consumed: end_lba,
        });
        self.now = t;
        self.cur_cyl = self.geom.lba_to_chs(end_lba - 1).cyl;
    }

    /// Services a write of `sectors` sectors at `lba`; returns the request
    /// latency in microseconds and advances the clock to completion.
    ///
    /// Writes invalidate the read-ahead buffer and always pay full
    /// mechanical positioning: the drive has no write cache, which is what
    /// makes back-to-back sequential writes lose a rotation (Section 5.1).
    ///
    /// Panics on an unrecoverable device error; fault-aware callers use
    /// [`Device::try_write`].
    pub fn write(&mut self, lba: u64, sectors: u32) -> f64 {
        self.try_write(lba, sectors)
            .expect("unrecoverable device write error")
    }

    /// The fault-free write path.
    fn service_write(&mut self, lba: u64, sectors: u32) -> f64 {
        debug_assert!(sectors > 0);
        debug_assert!(lba + sectors as u64 <= self.geom.total_sectors());
        let start = self.now;
        self.ra = None;
        let target = self.geom.lba_to_chs(lba);
        let sk = self.seek.seek_us(self.cur_cyl, target.cyl);
        obs::hist!(
            "disk.seek_cyls",
            obs::bounds::POW2,
            (target.cyl as i64 - self.cur_cyl as i64).unsigned_abs()
        );
        if sk > 0.0 {
            self.stats.seeks = self.stats.seeks.saturating_add(1);
        }
        let mut t = self.now + sk;
        let rot = self.rot_wait(t, lba);
        t += rot;
        let stream = self.geom.stream_time_us(lba, sectors);
        t += stream;
        self.stats.seek_time_us += sk;
        self.stats.rot_wait_us += rot;
        self.stats.stream_time_us += stream;
        self.stats.writes = self.stats.writes.saturating_add(1);
        self.stats.sectors_written = self.stats.sectors_written.saturating_add(sectors as u64);
        self.now = t;
        self.cur_cyl = self.geom.lba_to_chs(lba + sectors as u64 - 1).cyl;
        let latency = self.now - start;
        obs::hist!("disk.write_us", obs::bounds::TIME_US, latency);
        if let Some(tr) = &mut self.trace {
            tr.push(TraceEvent {
                issued_at: start,
                is_read: false,
                lba,
                sectors,
                latency_us: latency,
                buffer_hit: false,
            });
        }
        latency
    }

    /// Performs a byte-addressed transfer, splitting it into requests no
    /// larger than the controller's maximum transfer size and charging
    /// host overhead before each request — the I/O path the Section 5
    /// benchmarks exercise.
    pub fn transfer(&mut self, kind: IoKind, lba: u64, bytes: u64) -> f64 {
        self.try_transfer(kind, lba, bytes)
            .expect("unrecoverable device error mid-transfer")
    }

    /// Fallible [`Device::transfer`]: the first unrecoverable request
    /// aborts the remainder and surfaces as [`FsError::Io`].
    pub fn try_transfer(&mut self, kind: IoKind, lba: u64, bytes: u64) -> Result<f64, FsError> {
        debug_assert!(bytes > 0);
        let start = self.now;
        let ssz = self.geom.params().sector_size as u64;
        let max_sectors = (self.geom.params().max_transfer_bytes as u64 / ssz).max(1);
        let total_sectors = bytes.div_ceil(ssz);
        let mut off = 0u64;
        while off < total_sectors {
            let n = (total_sectors - off).min(max_sectors) as u32;
            self.advance(self.geom.params().host_overhead_us);
            self.try_io(kind, lba + off, n)?;
            off += n as u64;
        }
        Ok(self.now - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffs_types::units::mb_per_sec;
    use ffs_types::MB;

    fn dev() -> Device {
        Device::new(DiskParams::seagate_32430n())
    }

    #[test]
    fn sequential_reads_hit_the_track_buffer() {
        let mut d = dev();
        d.read(0, 128);
        assert_eq!(d.stats().buffer_hits, 0);
        d.read(128, 128);
        d.read(256, 128);
        assert_eq!(d.stats().buffer_hits, 2);
    }

    #[test]
    fn sequential_read_throughput_approaches_media_rate() {
        let mut d = dev();
        let total = 8 * MB;
        let t0 = d.now();
        d.transfer(IoKind::Read, 0, total);
        let mbs = mb_per_sec(total, d.now() - t0);
        let media = d.geometry().params().media_mb_per_sec();
        assert!(
            mbs > media * 0.80 && mbs <= media * 1.01,
            "sequential read {mbs:.2} MB/s vs media {media:.2}"
        );
    }

    #[test]
    fn sequential_write_loses_rotations() {
        // Raw sequential writes in 64 KB chunks should run at roughly half
        // the media rate: each chunk waits almost a full revolution.
        let mut d = dev();
        let total = 8 * MB;
        let t0 = d.now();
        d.transfer(IoKind::Write, 0, total);
        let mbs = mb_per_sec(total, d.now() - t0);
        let media = d.geometry().params().media_mb_per_sec();
        assert!(
            mbs > media * 0.35 && mbs < media * 0.65,
            "sequential write {mbs:.2} MB/s vs media {media:.2}"
        );
    }

    #[test]
    fn write_invalidates_read_ahead() {
        let mut d = dev();
        d.read(0, 128);
        d.write(10_000, 16);
        // Re-reading the previously buffered range must miss.
        let hits_before = d.stats().buffer_hits;
        d.read(128, 128);
        assert_eq!(d.stats().buffer_hits, hits_before);
    }

    #[test]
    fn random_small_reads_are_seek_dominated() {
        let mut d = dev();
        let t0 = d.now();
        let mut lba = 7;
        let n = 100;
        for _ in 0..n {
            // A crude LCG spreads requests across the disk.
            lba = (lba * 1_103_515_245 + 12_345) % (d.geometry().total_sectors() - 16);
            d.read(lba, 16); // 8 KB.
        }
        let per_req_ms = (d.now() - t0) / n as f64 / 1000.0;
        // Seek (~8-11 ms) + half rotation (~5.5 ms) + transfer (~1.5 ms).
        assert!(
            per_req_ms > 8.0 && per_req_ms < 25.0,
            "random 8 KB read cost {per_req_ms:.2} ms"
        );
    }

    #[test]
    fn buffer_hit_is_bus_speed_for_cached_data() {
        let mut d = dev();
        d.read(0, 256);
        let lat = d.read(0, 16); // Still in buffer; no mechanical delay.
                                 // 8 KB at 10 MB/s is ~780 us.
        assert!(lat < 1_000.0, "cached read took {lat} us");
    }

    #[test]
    fn read_latency_advances_clock_by_latency() {
        let mut d = dev();
        let before = d.now();
        let lat = d.read(1_000_000, 16);
        assert!((d.now() - before - lat).abs() < 1e-9);
        assert!(lat > 0.0);
    }

    #[test]
    fn transfer_splits_at_max_transfer_size() {
        let mut d = dev();
        d.transfer(IoKind::Write, 0, 256 * 1024);
        // 256 KB at 64 KB per request = 4 writes.
        assert_eq!(d.stats().writes, 4);
        assert_eq!(d.stats().sectors_written, 512);
    }

    #[test]
    fn advance_moves_clock_without_io() {
        let mut d = dev();
        d.advance(1234.5);
        assert!((d.now() - 1234.5).abs() < 1e-9);
        assert_eq!(d.stats().reads, 0);
    }

    #[test]
    fn skip_ahead_misses_the_buffer() {
        // Mid-90s firmware does not bridge gaps: a forward skip is a
        // fresh mechanical access even though the data would have
        // streamed past shortly.
        let mut d = dev();
        d.read(0, 128);
        let hits = d.stats().buffer_hits;
        d.read(256, 128);
        assert_eq!(d.stats().buffer_hits, hits);
    }

    #[test]
    fn continuation_after_think_time_hits_buffer() {
        // While the host thinks, the drive keeps prefetching: the exact
        // continuation of the consumed stream is served from the buffer.
        let mut d = dev();
        d.read(0, 16);
        d.advance(d.geometry().params().host_overhead_us);
        let hits = d.stats().buffer_hits;
        let lat = d.read(16, 16);
        assert_eq!(d.stats().buffer_hits, hits + 1);
        assert!(lat < 2_500.0, "continuation served in {lat:.0} us");
    }

    #[test]
    fn gap_skip_is_never_bridged() {
        // A request that skips past the consumed stream repositions
        // mechanically even though the prefetcher passed the data — the
        // firmware does not serve arbitrary offsets from the buffer.
        let mut d = dev();
        d.read(0, 16);
        d.advance(d.geometry().params().host_overhead_us);
        let hits = d.stats().buffer_hits;
        let lat = d.read(18, 2);
        assert_eq!(d.stats().buffer_hits, hits);
        assert!(
            lat > 500.0,
            "gap skip served suspiciously fast: {lat:.0} us"
        );
    }

    #[test]
    fn trace_records_requests_with_hit_flags() {
        let mut d = dev();
        d.enable_trace(8);
        d.read(0, 128);
        d.read(128, 128); // Sequential continuation: buffer hit.
        d.write(4_000, 16);
        let t = d.trace().expect("trace enabled");
        assert_eq!(t.len(), 3);
        let evs: Vec<_> = t.events().collect();
        assert!(evs[0].is_read && !evs[0].buffer_hit);
        assert!(evs[1].is_read && evs[1].buffer_hit);
        assert!(!evs[2].is_read);
        assert!(t.mean_latency_us().unwrap() > 0.0);
        // The slowest event is one of the mechanical accesses.
        assert!(!t.slowest().unwrap().buffer_hit);
        d.enable_trace(0);
        assert!(d.trace().is_none());
    }

    #[test]
    fn transient_faults_cost_revolutions_and_count() {
        use crate::fault::FaultPlan;
        let mut clean = dev();
        let mut faulty = dev();
        faulty.inject_faults(&FaultPlan::new(3).transient_rate(0.3));
        let t_clean = clean.transfer(IoKind::Read, 0, MB);
        let t_faulty = faulty.transfer(IoKind::Read, 0, MB);
        let s = faulty.stats();
        assert!(s.transient_errors > 0, "no transient errors at 30% rate");
        assert_eq!(s.transient_errors, s.retries);
        assert!(s.retry_time_us > 0.0);
        assert!(
            t_faulty > t_clean,
            "retries were free: {t_faulty:.0} vs {t_clean:.0} us"
        );
        assert_eq!(s.remaps, 0);
    }

    #[test]
    fn latent_sector_is_remapped_once_and_perturbs_contiguity() {
        use crate::fault::FaultPlan;
        let mut d = dev();
        d.inject_faults(&FaultPlan::new(1).bad_sector(64).spare_sectors(256));
        // First pass discovers the defect: full retry budget, then remap.
        d.transfer(IoKind::Read, 0, 128 * 1024);
        assert_eq!(d.stats().remaps, 1);
        let retries_after_discovery = d.stats().retries;
        assert!(retries_after_discovery >= 3);
        let inj = d.fault_injector().unwrap();
        assert_eq!(inj.remap_table().len(), 1);
        assert_eq!(inj.latent_remaining(), 0);
        // Second pass over the same range: the defect is gone, but the
        // request now splits around the spare — slower than a clean
        // device reading the same bytes, with no further retries.
        let t_remapped = d.transfer(IoKind::Read, 0, 128 * 1024);
        assert_eq!(d.stats().retries, retries_after_discovery);
        let mut clean = dev();
        clean.transfer(IoKind::Read, 0, 128 * 1024);
        let t_clean = clean.transfer(IoKind::Read, 0, 128 * 1024);
        assert!(
            t_remapped > t_clean,
            "remap hid the discontinuity: {t_remapped:.0} vs {t_clean:.0} us"
        );
    }

    #[test]
    fn spare_exhaustion_surfaces_as_io_error() {
        use crate::fault::FaultPlan;
        let mut d = dev();
        d.inject_faults(
            &FaultPlan::new(1)
                .bad_sector(8)
                .bad_sector(9)
                .spare_sectors(1),
        );
        assert!(d.try_write(0, 16).is_err());
        match d.try_read(8, 4) {
            Err(ffs_types::FsError::Io { .. }) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn fault_runs_are_deterministic_per_seed() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::new(77).transient_rate(0.1).latent_sectors(8);
        let mut a = dev();
        let mut b = dev();
        a.inject_faults(&plan);
        b.inject_faults(&plan);
        for lba in [0u64, 40_000, 9_000, 1_000_000] {
            a.transfer(IoKind::Read, lba, 256 * 1024);
            b.transfer(IoKind::Read, lba, 256 * 1024);
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(
            a.fault_injector().unwrap().remap_table(),
            b.fault_injector().unwrap().remap_table()
        );
    }

    #[test]
    fn noop_plan_changes_nothing() {
        use crate::fault::FaultPlan;
        let mut plain = dev();
        let mut planned = dev();
        planned.inject_faults(&FaultPlan::new(5));
        let t0 = plain.transfer(IoKind::Read, 0, MB);
        let t1 = planned.transfer(IoKind::Read, 0, MB);
        assert_eq!(t0, t1);
        assert_eq!(plain.stats(), planned.stats());
    }

    #[test]
    fn far_jump_misses_buffer() {
        let mut d = dev();
        d.read(0, 128);
        let hits = d.stats().buffer_hits;
        d.read(2_000_000, 128);
        assert_eq!(d.stats().buffer_hits, hits);
        assert!(d.stats().seeks >= 1);
    }
}
