//! Raw-device sequential throughput, the baseline lines of Figure 4.
//!
//! The paper plots "Raw Read Throughput" and "Raw Write Throughput"
//! alongside the file-system curves: reads stream at the media rate thanks
//! to the track buffer; writes lose most of a rotation between successive
//! 64 KB requests and land near half the media rate.

use ffs_types::units::mb_per_sec;
use ffs_types::DiskParams;

use crate::device::{Device, IoKind};

/// Result of a raw-device sweep.
#[derive(Clone, Debug)]
pub struct RawSweep {
    /// Bytes transferred.
    pub bytes: u64,
    /// Simulated elapsed time in microseconds.
    pub elapsed_us: f64,
    /// Throughput in MB/s.
    pub mb_per_sec: f64,
}

fn run(params: &DiskParams, kind: IoKind, bytes: u64) -> RawSweep {
    let mut dev = Device::new(params.clone());
    // Start mid-disk so the first seek is representative, then stream.
    let start_lba = dev.geometry().total_sectors() / 4;
    let t0 = dev.now();
    dev.transfer(kind, start_lba, bytes);
    let elapsed = dev.now() - t0;
    RawSweep {
        bytes,
        elapsed_us: elapsed,
        mb_per_sec: mb_per_sec(bytes, elapsed),
    }
}

/// Sequential raw read throughput over `bytes` bytes.
pub fn raw_read_throughput(params: &DiskParams, bytes: u64) -> RawSweep {
    run(params, IoKind::Read, bytes)
}

/// Sequential raw write throughput over `bytes` bytes.
pub fn raw_write_throughput(params: &DiskParams, bytes: u64) -> RawSweep {
    run(params, IoKind::Write, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffs_types::MB;

    #[test]
    fn raw_read_near_media_rate() {
        let p = DiskParams::seagate_32430n();
        let s = raw_read_throughput(&p, 32 * MB);
        let media = p.media_mb_per_sec();
        assert!(
            s.mb_per_sec > media * 0.9,
            "raw read {:.2} vs media {:.2}",
            s.mb_per_sec,
            media
        );
    }

    #[test]
    fn raw_write_about_half_of_read() {
        let p = DiskParams::seagate_32430n();
        let r = raw_read_throughput(&p, 32 * MB);
        let w = raw_write_throughput(&p, 32 * MB);
        let ratio = w.mb_per_sec / r.mb_per_sec;
        assert!(
            (0.35..0.7).contains(&ratio),
            "write/read ratio {ratio:.2} (w={:.2}, r={:.2})",
            w.mb_per_sec,
            r.mb_per_sec
        );
    }

    #[test]
    fn sweep_reports_consistent_fields() {
        let p = DiskParams::seagate_32430n();
        let s = raw_read_throughput(&p, MB);
        assert_eq!(s.bytes, MB);
        assert!(s.elapsed_us > 0.0);
        let recomputed = mb_per_sec(s.bytes, s.elapsed_us);
        assert!((recomputed - s.mb_per_sec).abs() < 1e-9);
    }
}
