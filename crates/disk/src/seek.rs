//! The seek-time curve.
//!
//! Standard two-piece model (Ruemmler & Wilkes): seek time grows with the
//! square root of the distance for short seeks (arm acceleration) and
//! linearly for long ones. The curve is anchored at three points from the
//! drive's data sheet: single-cylinder, "average" (one third of the
//! cylinder span, per industry convention), and full-span.

use ffs_types::DiskParams;

/// A calibrated seek-time curve for one drive.
#[derive(Clone, Debug)]
pub struct SeekCurve {
    min_us: f64,
    avg_us: f64,
    max_us: f64,
    /// Distance at which the curve switches from sqrt to linear (one third
    /// of the cylinder span).
    knee: f64,
    cylinders: u32,
}

impl SeekCurve {
    /// Builds the curve from disk parameters.
    pub fn new(params: &DiskParams) -> SeekCurve {
        SeekCurve {
            min_us: params.min_seek_ms * 1000.0,
            avg_us: params.avg_seek_ms * 1000.0,
            max_us: params.max_seek_ms * 1000.0,
            knee: (params.cylinders as f64 / 3.0).max(1.0),
            cylinders: params.cylinders,
        }
    }

    /// Seek time between two cylinders in microseconds. Zero distance is
    /// free (the head is already there).
    pub fn seek_us(&self, from_cyl: u32, to_cyl: u32) -> f64 {
        let d = from_cyl.abs_diff(to_cyl) as f64;
        if d == 0.0 {
            return 0.0;
        }
        if d <= self.knee {
            // sqrt piece through (1, min) and (knee, avg).
            let span = (self.knee.sqrt() - 1.0).max(1e-9);
            let b = (self.avg_us - self.min_us) / span;
            self.min_us + b * (d.sqrt() - 1.0)
        } else {
            // Linear piece through (knee, avg) and (cylinders-1, max).
            let span = (self.cylinders as f64 - 1.0 - self.knee).max(1.0);
            let b = (self.max_us - self.avg_us) / span;
            self.avg_us + b * (d - self.knee)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    fn curve() -> SeekCurve {
        SeekCurve::new(&DiskParams::seagate_32430n())
    }

    #[test]
    fn anchored_at_datasheet_points() {
        let c = curve();
        assert_eq!(c.seek_us(100, 100), 0.0);
        assert!((c.seek_us(0, 1) - 2000.0).abs() < 1.0);
        // Average-distance seek hits the 11 ms spec.
        let third = 3992 / 3;
        assert!((c.seek_us(0, third) - 11_000.0).abs() < 60.0);
        // Full-span seek hits the max spec.
        assert!((c.seek_us(0, 3991) - 19_000.0).abs() < 10.0);
    }

    #[test]
    fn monotonic_in_distance() {
        let c = curve();
        let mut prev = 0.0;
        for d in 1..3992 {
            let t = c.seek_us(0, d);
            assert!(t >= prev, "seek time decreased at distance {d}");
            prev = t;
        }
    }

    #[test]
    fn symmetric() {
        let c = curve();
        for (a, b) in [(0u32, 100u32), (5, 3000), (1234, 8)] {
            assert_eq!(c.seek_us(a, b), c.seek_us(b, a));
        }
    }

    #[test]
    fn continuous_at_knee() {
        let c = curve();
        let knee = 3992 / 3;
        let below = c.seek_us(0, knee);
        let above = c.seek_us(0, knee + 1);
        assert!((above - below) < 100.0, "jump at knee: {below} -> {above}");
    }

    #[test]
    fn random_pair_mean_is_near_average_spec() {
        // The mean seek over uniformly random cylinder pairs should be in
        // the vicinity of the quoted average (industry "average" is the
        // one-third-span seek; the true uniform mean is a little lower
        // because short seeks are cheap).
        let c = curve();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let a = rng.gen_range(0..3992u32);
            let b = rng.gen_range(0..3992u32);
            sum += c.seek_us(a, b);
        }
        let mean_ms = sum / n as f64 / 1000.0;
        assert!(
            (8.0..=12.5).contains(&mean_ms),
            "uniform mean seek {mean_ms} ms out of range"
        );
    }
}
