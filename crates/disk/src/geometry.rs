//! Logical-block to cylinder/head/sector mapping and media streaming time.
//!
//! The ST32430N is a zoned drive; following Table 1 we model it with the
//! average track length (116 sectors) on every track. Track and cylinder
//! skew are assumed ideal: a sequential transfer that crosses a track or
//! cylinder boundary pays the switch time but never an extra rotation.

use ffs_types::DiskParams;

/// A decoded physical position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chs {
    /// Cylinder index.
    pub cyl: u32,
    /// Head (track within the cylinder).
    pub head: u32,
    /// Sector within the track.
    pub sector: u32,
}

/// Disk geometry helper: derived constants plus address arithmetic.
#[derive(Clone, Debug)]
pub struct Geometry {
    params: DiskParams,
}

impl Geometry {
    /// Builds a geometry from disk parameters.
    pub fn new(params: DiskParams) -> Geometry {
        Geometry { params }
    }

    /// The underlying parameter set.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Total addressable sectors.
    pub fn total_sectors(&self) -> u64 {
        self.params.cylinders as u64 * self.params.sectors_per_cyl() as u64
    }

    /// Decodes an LBA into cylinder, head, and sector.
    pub fn lba_to_chs(&self, lba: u64) -> Chs {
        let spc = self.params.sectors_per_cyl() as u64;
        let spt = self.params.sectors_per_track as u64;
        let cyl = (lba / spc) as u32;
        let within = lba % spc;
        Chs {
            cyl,
            head: (within / spt) as u32,
            sector: (within % spt) as u32,
        }
    }

    /// Encodes cylinder/head/sector back into an LBA.
    pub fn chs_to_lba(&self, chs: Chs) -> u64 {
        chs.cyl as u64 * self.params.sectors_per_cyl() as u64
            + chs.head as u64 * self.params.sectors_per_track as u64
            + chs.sector as u64
    }

    /// Angular slot of an LBA on its track, in microseconds from a fixed
    /// rotational reference.
    ///
    /// The ST32430N is zoned: sectors per track varies across the disk,
    /// so the angular position of an LBA is effectively decorrelated
    /// between tracks (Table 1's 116 sectors/track is an average). We
    /// keep the uniform geometry for capacity and streaming, but give
    /// each track a pseudorandom skew so that cross-track jumps pay a
    /// realistic (uniformly distributed) rotational delay while
    /// same-track gaps stay cheap. Strictly sequential streaming never
    /// consults this — the stream model assumes ideal skew.
    pub fn angular_offset_us(&self, lba: u64) -> f64 {
        let chs = self.lba_to_chs(lba);
        let track = chs.cyl as u64 * self.params.heads as u64 + chs.head as u64;
        let skew = track_hash(track) % self.params.sectors_per_track as u64;
        let slot = (chs.sector as u64 + skew) % self.params.sectors_per_track as u64;
        slot as f64 * self.params.sector_time_us()
    }

    /// Time to stream `sectors` sectors starting at `lba` once the head is
    /// positioned: media rotation plus head/cylinder switch times. Skew is
    /// assumed to exactly hide switch latency, so no extra rotations are
    /// charged.
    pub fn stream_time_us(&self, lba: u64, sectors: u32) -> f64 {
        let spt = self.params.sectors_per_track;
        let st = self.params.sector_time_us();
        let mut remaining = sectors;
        let mut pos = self.lba_to_chs(lba);
        let mut t = 0.0;
        while remaining > 0 {
            let on_track = (spt - pos.sector).min(remaining);
            t += on_track as f64 * st;
            remaining -= on_track;
            if remaining > 0 {
                // Advance to the next track.
                if pos.head + 1 < self.params.heads {
                    pos = Chs {
                        cyl: pos.cyl,
                        head: pos.head + 1,
                        sector: 0,
                    };
                    t += self.params.head_switch_us;
                } else {
                    pos = Chs {
                        cyl: pos.cyl + 1,
                        head: 0,
                        sector: 0,
                    };
                    t += self.params.min_seek_ms * 1000.0;
                }
            }
        }
        t
    }
}

/// SplitMix64-style track hash used for the per-track rotational skew.
fn track_hash(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(DiskParams::seagate_32430n())
    }

    #[test]
    fn chs_round_trip() {
        let g = geom();
        for lba in [0u64, 1, 115, 116, 1043, 1044, 1_000_000] {
            let chs = g.lba_to_chs(lba);
            assert_eq!(g.chs_to_lba(chs), lba, "lba {lba}");
        }
    }

    #[test]
    fn track_and_cylinder_boundaries() {
        let g = geom();
        // Sector 116 is head 1 sector 0.
        assert_eq!(
            g.lba_to_chs(116),
            Chs {
                cyl: 0,
                head: 1,
                sector: 0
            }
        );
        // Sector 1044 (9 tracks x 116) is cylinder 1.
        assert_eq!(
            g.lba_to_chs(1044),
            Chs {
                cyl: 1,
                head: 0,
                sector: 0
            }
        );
    }

    #[test]
    fn total_capacity_matches_params() {
        let g = geom();
        assert_eq!(g.total_sectors(), 3992 * 9 * 116);
    }

    #[test]
    fn stream_time_single_track() {
        let g = geom();
        let st = g.params().sector_time_us();
        // 10 sectors within one track: pure rotation.
        let t = g.stream_time_us(0, 10);
        assert!((t - 10.0 * st).abs() < 1e-6);
    }

    #[test]
    fn stream_time_charges_head_switch() {
        let g = geom();
        let st = g.params().sector_time_us();
        // Crossing one track boundary adds exactly one head switch.
        let t = g.stream_time_us(110, 12);
        let expected = 12.0 * st + g.params().head_switch_us;
        assert!((t - expected).abs() < 1e-6);
    }

    #[test]
    fn stream_time_charges_cylinder_switch() {
        let g = geom();
        let st = g.params().sector_time_us();
        // Crossing the cylinder boundary (after head 8) costs a
        // single-cylinder seek instead of a head switch.
        let start = 1043; // Last sector of cylinder 0.
        let t = g.stream_time_us(start, 2);
        let expected = 2.0 * st + g.params().min_seek_ms * 1000.0;
        assert!((t - expected).abs() < 1e-6);
    }

    #[test]
    fn angular_offset_preserves_same_track_spacing() {
        let g = geom();
        let st = g.params().sector_time_us();
        let rev = g.params().rev_time_us();
        // Within one track, consecutive sectors are one sector time
        // apart (modulo a revolution).
        let d = (g.angular_offset_us(6) - g.angular_offset_us(5)).rem_euclid(rev);
        assert!((d - st).abs() < 1e-9);
        // Offsets always lie within one revolution.
        for lba in [0u64, 115, 116, 1044, 999_999] {
            let a = g.angular_offset_us(lba);
            assert!((0.0..rev).contains(&a), "offset {a} for lba {lba}");
        }
    }

    #[test]
    fn angular_offset_decorrelates_across_tracks() {
        // Different tracks get different pseudorandom skews (zoned
        // geometry): at least some consecutive track pairs must differ.
        let g = geom();
        let mut distinct = 0;
        for t in 0..20u64 {
            let a = g.angular_offset_us(t * 116);
            let b = g.angular_offset_us((t + 1) * 116);
            if (a - b).abs() > 1e-6 {
                distinct += 1;
            }
        }
        assert!(distinct > 10, "only {distinct} of 20 pairs differ");
    }
}
