//! A parametric disk timing model.
//!
//! The paper measures file-system throughput on a Seagate ST32430N behind a
//! BusLogic 946C controller (Table 1). This crate reproduces that I/O path
//! as a deterministic simulation with the three timing effects the paper's
//! performance analysis depends on:
//!
//! 1. **Seek and rotation dominate small transfers.** The PCI/SCSI bus is
//!    much faster than the media, so reducing seeks (better layout) shows
//!    up almost 1:1 in throughput — the reason the realloc policy wins by
//!    more here than on the SparcStation of earlier studies.
//! 2. **Sequential writes lose a rotation between back-to-back requests.**
//!    The drive has no write buffer; by the time the host issues the next
//!    sequential write, the target sector has passed under the head
//!    (Section 5.1's explanation of the write-throughput drop past 64 KB
//!    and of raw-write throughput being roughly half of raw-read).
//! 3. **The track buffer hides that rotation for reads.** A 512 KB
//!    read-ahead buffer keeps streaming while the host thinks, so
//!    sequential reads of contiguous data run at the media rate.
//!
//! Time is simulated in microseconds; nothing here touches real hardware
//! or the wall clock.
//!
//! # Examples
//!
//! ```
//! use disk::Device;
//! use ffs_types::DiskParams;
//!
//! let mut dev = Device::new(DiskParams::seagate_32430n());
//! // Read 64 KB at LBA 0, then the next 64 KB: the second read is served
//! // from the track buffer's read-ahead.
//! dev.read(0, 128);
//! let before = dev.stats().buffer_hits;
//! dev.read(128, 128);
//! assert_eq!(dev.stats().buffer_hits, before + 1);
//! ```

pub mod device;
pub mod fault;
pub mod geometry;
pub mod raw;
pub mod seek;
pub mod trace;

pub use device::{Device, DeviceStats, IoKind};
pub use fault::{classify_error, ErrorClass, FaultInjector, FaultPlan};
pub use geometry::{Chs, Geometry};
pub use raw::{raw_read_throughput, raw_write_throughput, RawSweep};
pub use seek::SeekCurve;
pub use trace::{IoTrace, TraceEvent};
