//! Request tracing: an optional per-request event log on the device.
//!
//! Timing totals ([`crate::DeviceStats`]) say *how much* time went where;
//! a trace says *which requests* paid it — the tool for answering
//! questions like "which discontiguity of this file costs the rotation?".

/// One traced request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulated time the request was issued, in microseconds.
    pub issued_at: f64,
    /// True for reads.
    pub is_read: bool,
    /// Starting LBA.
    pub lba: u64,
    /// Request length in sectors.
    pub sectors: u32,
    /// Request latency in microseconds.
    pub latency_us: f64,
    /// Whether the track buffer served it (reads only).
    pub buffer_hit: bool,
}

/// A bounded request log. When full, the oldest events are dropped, so a
/// long simulation can keep a trace of its recent activity cheaply.
#[derive(Clone, Debug, Default)]
pub struct IoTrace {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl IoTrace {
    /// Creates a trace buffer holding up to `capacity` events.
    pub fn new(capacity: usize) -> IoTrace {
        IoTrace {
            events: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest when full.
    pub fn push(&mut self, e: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or rejected) since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Mean latency of the retained events in microseconds, or `None`
    /// when empty.
    pub fn mean_latency_us(&self) -> Option<f64> {
        if self.events.is_empty() {
            return None;
        }
        Some(self.events.iter().map(|e| e.latency_us).sum::<f64>() / self.events.len() as f64)
    }

    /// The slowest retained event, or `None` when empty.
    pub fn slowest(&self) -> Option<&TraceEvent> {
        self.events
            .iter()
            .max_by(|a, b| a.latency_us.total_cmp(&b.latency_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(lat: f64) -> TraceEvent {
        TraceEvent {
            issued_at: 0.0,
            is_read: true,
            lba: 0,
            sectors: 16,
            latency_us: lat,
            buffer_hit: false,
        }
    }

    #[test]
    fn bounded_eviction() {
        let mut t = IoTrace::new(3);
        for i in 0..5 {
            t.push(ev(i as f64));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let lats: Vec<f64> = t.events().map(|e| e.latency_us).collect();
        assert_eq!(lats, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut t = IoTrace::new(0);
        t.push(ev(1.0));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.mean_latency_us(), None);
    }

    #[test]
    fn summary_statistics() {
        let mut t = IoTrace::new(16);
        for l in [1.0, 2.0, 9.0] {
            t.push(ev(l));
        }
        assert_eq!(t.mean_latency_us(), Some(4.0));
        assert_eq!(t.slowest().unwrap().latency_us, 9.0);
    }
}
