//! Property tests for the disk timing model.

use disk::{Device, IoKind};
use ffs_types::DiskParams;
use proptest::prelude::*;

/// A scripted device request.
#[derive(Clone, Debug)]
enum Req {
    Read { lba: u64, sectors: u32 },
    Write { lba: u64, sectors: u32 },
    Think { us: u32 },
    Transfer { lba: u64, bytes: u32, write: bool },
}

fn reqs() -> impl Strategy<Value = Vec<Req>> {
    let total = 3992u64 * 9 * 116;
    let lba = 0..total - 2048;
    proptest::collection::vec(
        prop_oneof![
            (lba.clone(), 1u32..256).prop_map(|(lba, sectors)| Req::Read { lba, sectors }),
            (lba.clone(), 1u32..256).prop_map(|(lba, sectors)| Req::Write { lba, sectors }),
            (0u32..50_000).prop_map(|us| Req::Think { us }),
            (lba, 512u32..512 * 1024, any::<bool>())
                .prop_map(|(lba, bytes, write)| Req::Transfer { lba, bytes, write }),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Time only moves forward; every latency is non-negative and
    /// bounded by physics (seek + rotation + streaming + switches).
    #[test]
    fn time_is_monotone_and_bounded(script in reqs()) {
        let params = DiskParams::seagate_32430n();
        let mut dev = Device::new(params.clone());
        let mut prev = dev.now();
        for r in &script {
            match *r {
                Req::Read { lba, sectors } => {
                    let lat = dev.read(lba, sectors);
                    prop_assert!(lat >= 0.0);
                    // Upper bound: max seek + rev + stream + generous
                    // switch allowance.
                    let bound = params.max_seek_ms * 1000.0
                        + 2.0 * params.rev_time_us()
                        + sectors as f64 * params.sector_time_us()
                        + sectors as f64 / 100.0 * 3000.0
                        + 10_000.0;
                    prop_assert!(lat <= bound, "read latency {lat} > {bound}");
                }
                Req::Write { lba, sectors } => {
                    let lat = dev.write(lba, sectors);
                    prop_assert!(lat >= 0.0);
                }
                Req::Think { us } => dev.advance(us as f64),
                Req::Transfer { lba, bytes, write } => {
                    let kind = if write { IoKind::Write } else { IoKind::Read };
                    let lat = dev.transfer(kind, lba, bytes as u64);
                    prop_assert!(lat > 0.0);
                }
            }
            prop_assert!(dev.now() >= prev, "clock moved backwards");
            prev = dev.now();
        }
    }

    /// The device is deterministic: the same script produces the same
    /// clock and statistics.
    #[test]
    fn device_is_deterministic(script in reqs()) {
        let params = DiskParams::seagate_32430n();
        let mut a = Device::new(params.clone());
        let mut b = Device::new(params);
        for r in &script {
            match *r {
                Req::Read { lba, sectors } => {
                    a.read(lba, sectors);
                    b.read(lba, sectors);
                }
                Req::Write { lba, sectors } => {
                    a.write(lba, sectors);
                    b.write(lba, sectors);
                }
                Req::Think { us } => {
                    a.advance(us as f64);
                    b.advance(us as f64);
                }
                Req::Transfer { lba, bytes, write } => {
                    let kind = if write { IoKind::Write } else { IoKind::Read };
                    a.transfer(kind, lba, bytes as u64);
                    b.transfer(kind, lba, bytes as u64);
                }
            }
        }
        prop_assert_eq!(a.now(), b.now());
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// Statistics account for every sector moved, and hits never exceed
    /// reads.
    #[test]
    fn stats_account_for_all_sectors(script in reqs()) {
        let params = DiskParams::seagate_32430n();
        let mut dev = Device::new(params);
        let mut exp_read = 0u64;
        let mut exp_written = 0u64;
        for r in &script {
            match *r {
                Req::Read { lba, sectors } => {
                    dev.read(lba, sectors);
                    exp_read += sectors as u64;
                }
                Req::Write { lba, sectors } => {
                    dev.write(lba, sectors);
                    exp_written += sectors as u64;
                }
                Req::Think { us } => dev.advance(us as f64),
                Req::Transfer { lba, bytes, write } => {
                    let kind = if write { IoKind::Write } else { IoKind::Read };
                    dev.transfer(kind, lba, bytes as u64);
                    let sectors = (bytes as u64).div_ceil(512);
                    if write {
                        exp_written += sectors;
                    } else {
                        exp_read += sectors;
                    }
                }
            }
        }
        let s = dev.stats();
        prop_assert_eq!(s.sectors_read, exp_read);
        prop_assert_eq!(s.sectors_written, exp_written);
        prop_assert!(s.buffer_hits <= s.reads);
        prop_assert!(s.seeks <= s.reads + s.writes);
    }

    /// Re-reading data that was just read is always at least as fast
    /// (the buffer can only help).
    #[test]
    fn rereads_never_slower(lba in 0u64..1_000_000, sectors in 1u32..128) {
        let params = DiskParams::seagate_32430n();
        let mut dev = Device::new(params);
        let first = dev.read(lba, sectors);
        let second = dev.read(lba, sectors);
        prop_assert!(
            second <= first + 1.0,
            "re-read {second} slower than first {first}"
        );
    }
}
