//! One shard of the fleet: age one volume, stream its day samples.
//!
//! [`run_shard`] replays a shard's workload through
//! [`aging::replay_tapped`], measuring at the end of every simulated day
//! — layout score and utilization from the recorded [`aging::DayStats`],
//! free-space fragmentation computed live from the end-of-day file
//! system. The aged image itself is discarded: a fleet cares about the
//! sample series, and persisting thousands of full images would defeat
//! the constant-memory design.
//!
//! The sample series *is* checkpointed, through the content-addressed
//! [`ArtifactStore`] (`<key>.shard`, atomic install). Floats are written
//! with Rust's shortest round-trip `Display`, so a reloaded series is
//! bit-identical to the freshly measured one and a resumed fleet renders
//! byte-identical exhibits. Loading trusts nothing: header, key, policy,
//! sample count, and a whole-file checksum are validated, and damage is
//! quarantined (bytes preserved for post-mortem) before the shard is
//! re-aged.

use std::path::PathBuf;

use aging::{generate, replay_tapped, CancelToken, ReplayOptions};
use exp::{fnv1a, ArtifactStore, CacheStatus, JobError};
use ffs::free_space_stats;

use crate::spec::{ShardSpec, FLEET_FORMAT_VERSION};

/// Artifact extension for shard sample checkpoints.
const EXT: &str = "shard";

/// Free-run histogram length passed to [`free_space_stats`]; the
/// fragmentation metric only reads the exact block totals, so the bound
/// just caps scratch space.
const FREE_HIST_MAX: usize = 32;

/// One end-of-day measurement of a shard.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardSample {
    /// Day index (0-based).
    pub day: u32,
    /// Aggregate layout score at end of day.
    pub layout: f64,
    /// Free-space fragmentation: the fraction of free blocks *not*
    /// sitting in maxcontig-length runs (`1 − clusterable_fraction`).
    pub freefrag: f64,
    /// Utilization at end of day.
    pub util: f64,
}

/// What aging one shard produced.
#[derive(Clone, Debug)]
pub struct ShardOutput {
    /// One sample per aged day, in day order.
    pub samples: Vec<ShardSample>,
    /// Workload operations replayed (0 on a cache hit).
    pub ops: u64,
    /// Creates skipped for lack of space.
    pub skipped: u64,
    /// Whether the series came from the store.
    pub cache: CacheStatus,
    /// Where a damaged checkpoint was preserved, if one was found.
    pub quarantined: Option<PathBuf>,
}

fn render_artifact(spec: &ShardSpec, samples: &[ShardSample], skipped: u64) -> String {
    use std::fmt::Write as _;
    let mut text = format!("# fleet shard artifact v{FLEET_FORMAT_VERSION}\n");
    let _ = writeln!(text, "key {}", spec.key_hex());
    let _ = writeln!(text, "policy {}", spec.policy_name());
    let _ = writeln!(text, "days {}", samples.len());
    let _ = writeln!(text, "skipped {skipped}");
    for s in samples {
        // Shortest round-trip Display: reload is bit-exact.
        let _ = writeln!(
            text,
            "sample {} {} {} {}",
            s.day, s.layout, s.freefrag, s.util
        );
    }
    let _ = writeln!(text, "checksum {:016x}", fnv1a(text.as_bytes()));
    text
}

fn parse_artifact(spec: &ShardSpec, text: &str) -> Result<(Vec<ShardSample>, u64), String> {
    // The checksum line covers every byte before it.
    let tail = text.rfind("checksum ").ok_or("missing checksum line")?;
    if tail > 0 && text.as_bytes()[tail - 1] != b'\n' {
        return Err("malformed checksum line".into());
    }
    let recorded = text[tail..]
        .trim_end()
        .strip_prefix("checksum ")
        .ok_or("malformed checksum line")?;
    let actual = format!("{:016x}", fnv1a(&text.as_bytes()[..tail]));
    if recorded != actual {
        return Err(format!(
            "checksum mismatch: file says {recorded}, content is {actual}"
        ));
    }
    let mut lines = text[..tail].lines();
    let header = lines.next().ok_or("empty artifact")?;
    if header != format!("# fleet shard artifact v{FLEET_FORMAT_VERSION}") {
        return Err(format!("unknown format {header:?}"));
    }
    let mut days = None;
    let mut skipped = None;
    let mut samples: Vec<ShardSample> = Vec::new();
    for line in lines {
        match line.split_once(' ') {
            Some(("key", v)) => {
                if v != spec.key_hex() {
                    return Err(format!(
                        "key mismatch: file says {v}, wanted {}",
                        spec.key_hex()
                    ));
                }
            }
            Some(("policy", v)) => {
                if v != spec.policy_name() {
                    return Err(format!(
                        "policy mismatch: file says {v}, shard is {}",
                        spec.policy_name()
                    ));
                }
            }
            Some(("days", v)) => {
                days = Some(v.parse::<usize>().map_err(|e| format!("bad days: {e}"))?);
            }
            Some(("skipped", v)) => {
                skipped = Some(v.parse::<u64>().map_err(|e| format!("bad skipped: {e}"))?);
            }
            Some(("sample", v)) => {
                let mut f = v.split_whitespace();
                let mut next =
                    |name: &str| f.next().ok_or_else(|| format!("sample missing {name}"));
                samples.push(ShardSample {
                    day: next("day")?.parse().map_err(|e| format!("bad day: {e}"))?,
                    layout: next("layout")?
                        .parse()
                        .map_err(|e| format!("bad layout: {e}"))?,
                    freefrag: next("freefrag")?
                        .parse()
                        .map_err(|e| format!("bad freefrag: {e}"))?,
                    util: next("util")?
                        .parse()
                        .map_err(|e| format!("bad util: {e}"))?,
                });
            }
            _ => return Err(format!("unknown record {line:?}")),
        }
    }
    let days = days.ok_or("missing days line")?;
    let skipped = skipped.ok_or("missing skipped line")?;
    if samples.len() != days {
        return Err(format!("{} samples but days says {days}", samples.len()));
    }
    if days != spec.config.days as usize {
        return Err(format!(
            "artifact covers {days} days, shard wants {}",
            spec.config.days
        ));
    }
    Ok((samples, skipped))
}

/// Ages one shard, going through the store when one is given: a valid
/// checkpoint is reused (`hit`, zero replay ops), a missing one is
/// measured and saved (`miss`), a damaged one is quarantined and the
/// shard re-aged (`corrupt`). The optional `cancel` token rides into the
/// replay so a supervising deadline cuts the shard off at a day
/// boundary.
pub fn run_shard(
    store: Option<&ArtifactStore>,
    spec: &ShardSpec,
    cancel: Option<CancelToken>,
) -> Result<ShardOutput, JobError> {
    let key = spec.key_hex();
    let mut cache = CacheStatus::Disabled;
    let mut quarantined = None;
    if let Some(store) = store {
        match store.load_named(&key, EXT) {
            Ok(Some(text)) => match parse_artifact(spec, &text) {
                Ok((samples, skipped)) => {
                    return Ok(ShardOutput {
                        samples,
                        ops: 0,
                        skipped,
                        cache: CacheStatus::Hit,
                        quarantined: None,
                    });
                }
                Err(reason) => {
                    cache = CacheStatus::Corrupt;
                    quarantined = store.quarantine_named(&key, EXT, &reason);
                }
            },
            Ok(None) => cache = CacheStatus::Miss,
            Err(e) => {
                cache = CacheStatus::Corrupt;
                quarantined = store.quarantine_named(&key, EXT, &e.to_string());
            }
        }
    }
    let w = generate(
        &spec.config,
        spec.params.ncg,
        spec.params.data_capacity_bytes(),
    );
    let ops: u64 = w.days.iter().map(|d| d.ops.len() as u64).sum();
    let mut samples: Vec<ShardSample> = Vec::with_capacity(spec.config.days as usize);
    let mut tap = |fs: &ffs::Filesystem, d: &aging::DayStats| {
        samples.push(ShardSample {
            day: d.day,
            layout: d.layout_score,
            freefrag: 1.0 - free_space_stats(fs, FREE_HIST_MAX).clusterable_fraction(),
            util: d.utilization,
        });
    };
    let result = replay_tapped(
        &w,
        &spec.params,
        spec.policy,
        ReplayOptions {
            cancel,
            defrag: spec.defrag.clone(),
            ..ReplayOptions::default()
        },
        Some(&mut tap),
    )
    .map_err(|e| JobError::from_fs(&e))?;
    if let Some(store) = store {
        store
            .save_named(
                &key,
                EXT,
                &render_artifact(spec, &samples, result.skipped_creates),
            )
            .map_err(JobError::Fatal)?;
    }
    Ok(ShardOutput {
        samples,
        ops,
        skipped: result.skipped_creates,
        cache,
        quarantined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FleetSpec;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fleet-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn miss_then_hit_reloads_bit_exact_samples() {
        let dir = tmpdir("roundtrip");
        let store = ArtifactStore::new(&dir);
        let spec = FleetSpec::new(4, 21, 4).shard(2);
        let cold = run_shard(Some(&store), &spec, None).unwrap();
        assert_eq!(cold.cache, CacheStatus::Miss);
        assert!(cold.ops > 0);
        assert_eq!(cold.samples.len(), 4);
        assert!(cold
            .samples
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.freefrag)));
        let warm = run_shard(Some(&store), &spec, None).unwrap();
        assert_eq!(warm.cache, CacheStatus::Hit);
        assert_eq!(warm.ops, 0);
        assert_eq!(warm.samples, cold.samples, "reload is bit-exact");
        assert_eq!(warm.skipped, cold.skipped);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncached_shard_reports_disabled() {
        let spec = FleetSpec::new(2, 5, 2).shard(0);
        let out = run_shard(None, &spec, None).unwrap();
        assert_eq!(out.cache, CacheStatus::Disabled);
        assert_eq!(out.samples.len(), 2);
        assert!(out.ops > 0);
    }

    #[test]
    fn damage_is_quarantined_and_the_shard_re_aged() {
        let dir = tmpdir("damage");
        let store = ArtifactStore::new(&dir);
        let spec = FleetSpec::new(4, 9, 3).shard(1);
        let cold = run_shard(Some(&store), &spec, None).unwrap();
        let path = store.named_path(&spec.key_hex(), EXT);
        let original = std::fs::read_to_string(&path).unwrap();

        // Every validation layer rejects: bit rot (checksum), truncation,
        // a wrong-key file under the right name, a policy swap.
        for bad in [
            original.replacen("sample 0", "sample 9", 1),
            original[..original.len() / 2].to_string(),
            original.replacen(&spec.key_hex(), "0000000000000000", 2),
        ] {
            assert!(parse_artifact(&spec, &bad).is_err(), "accepted: {bad:?}");
        }

        std::fs::write(&path, original.replacen("sample 0", "sample 9", 1)).unwrap();
        let healed = run_shard(Some(&store), &spec, None).unwrap();
        assert_eq!(healed.cache, CacheStatus::Corrupt);
        assert!(healed.ops > 0, "the series was re-measured, not trusted");
        assert_eq!(healed.samples, cold.samples);
        let q = healed.quarantined.expect("damaged checkpoint preserved");
        assert!(q.starts_with(store.quarantine_dir()));
        // The store healed: next load hits.
        assert_eq!(
            run_shard(Some(&store), &spec, None).unwrap().cache,
            CacheStatus::Hit
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_cancelled_shard_surfaces_as_a_deadline() {
        let spec = FleetSpec::new(2, 13, 3).shard(0);
        let token = CancelToken::with_op_budget(1);
        let e = run_shard(None, &spec, Some(token)).unwrap_err();
        assert!(matches!(e, JobError::Deadline { .. }), "got {e:?}");
    }
}
