//! Fleet specification: a seed deterministically expanded into shards.
//!
//! A fleet is described by three numbers — shard count, fleet seed,
//! horizon in days — and nothing else travels between processes. Each
//! shard derives its own generator from `(fleet_seed, index)` and draws
//! a heterogeneous volume (size, cylinder groups), an allocation policy,
//! and a workload profile (intensity, utilization trajectory,
//! burstiness) from fixed menus. Because each shard's draw is
//! independent of every other shard's, the expansion needs no shared
//! sequential state: shard 977 of a thousand-shard fleet can be
//! re-derived alone, which is what makes per-shard caching and resume
//! content-addressable.

use aging::AgingConfig;
use exp::fnv1a;
use ffs::AllocPolicy;
use ffs_types::{FsParams, KB, MB};

use crate::sampler::SplitMix64;

/// Version of the shard provenance and artifact format. Bumping it
/// invalidates every cached shard checkpoint at once. v2 added the
/// defragmentation draw to the shard menu.
pub const FLEET_FORMAT_VERSION: u32 = 2;

/// Volume sizes the sampler draws from, in megabytes. All are small
/// multiples of the test geometry so a large fleet stays cheap while
/// still exercising heterogeneous capacity.
const SIZE_MB_MENU: [u64; 4] = [8, 12, 16, 24];

/// Cylinder-group counts the sampler draws from.
const NCG_MENU: [u32; 2] = [2, 4];

/// Daily move budgets the defragmentation draw picks from.
const DEFRAG_BUDGET_MENU: [u32; 2] = [50, 200];

/// A fleet: `shards` independent volumes aged for `days` days.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetSpec {
    /// Number of shards (independent volumes).
    pub shards: u32,
    /// Master seed every shard's draw derives from.
    pub fleet_seed: u64,
    /// Aging horizon in days, shared by every shard.
    pub days: u32,
}

impl FleetSpec {
    /// Builds a fleet specification.
    pub fn new(shards: u32, fleet_seed: u64, days: u32) -> FleetSpec {
        FleetSpec {
            shards,
            fleet_seed,
            days,
        }
    }

    /// Expands shard `index` (`0..shards`). Deterministic: the same
    /// `(fleet_seed, days, index)` always yields the identical shard,
    /// independent of any other shard's expansion.
    pub fn shard(&self, index: u32) -> ShardSpec {
        let mut rng =
            SplitMix64::new(self.fleet_seed ^ fnv1a(format!("fleet shard {index}").as_bytes()));
        let size_mb = *rng.pick(&SIZE_MB_MENU);
        let ncg = *rng.pick(&NCG_MENU);
        let params = FsParams {
            size_bytes: size_mb * MB,
            bsize: 8 * KB as u32,
            fsize: KB as u32,
            ncg,
            maxcontig: 7,
            minfree_pct: 10,
            bytes_per_inode: 4 * KB as u32,
            inode_size: 128,
        };
        let policy = if rng.next_u64().is_multiple_of(2) {
            AllocPolicy::Orig
        } else {
            AllocPolicy::Realloc
        };
        // Per-shard workload: the scaled-down paper profile re-scaled to
        // the drawn capacity, with jittered intensity and a heterogeneous
        // utilization trajectory.
        let mut config = AgingConfig::small_test(self.days, rng.next_u64());
        let scale = (size_mb as f64 / 16.0) * rng.in_range(0.75, 1.25);
        config.short_pairs_per_day *= scale;
        config.long_creates_per_day = (config.long_creates_per_day * scale).max(4.0);
        config.long_modifies_per_day = (config.long_modifies_per_day * scale).max(3.0);
        config.rewrites_per_day = (config.rewrites_per_day * scale).max(3.0);
        config.plateau_util = rng.in_range(0.55, 0.85);
        config.peak_util = (config.plateau_util + 0.10).min(0.92);
        config.burst_prob = rng.in_range(0.03, 0.09);
        // Drawn after everything above so the defragmentation menu's
        // introduction left every existing shard's volume, policy, and
        // workload untouched. Roughly one shard in four runs a daily
        // defragmentation pass.
        let defrag = if rng.next_u64().is_multiple_of(4) {
            let policy = *rng.pick(&defrag::DefragPolicy::all());
            let budget = *rng.pick(&DEFRAG_BUDGET_MENU);
            Some(defrag::DefragSpec::new(policy, budget))
        } else {
            None
        };
        ShardSpec {
            index,
            params,
            policy,
            config,
            defrag,
        }
    }
}

/// One expanded shard: a volume, a policy, and a workload.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSpec {
    /// Position in the fleet (`0..shards`).
    pub index: u32,
    /// The shard's volume geometry.
    pub params: FsParams,
    /// The allocation policy this shard ages under.
    pub policy: AllocPolicy,
    /// The shard's workload configuration (carries the shard's seed).
    pub config: AgingConfig,
    /// The daily defragmentation pass this shard runs, if it drew one.
    pub defrag: Option<defrag::DefragSpec>,
}

impl ShardSpec {
    /// The shard's engine job id. Zero-padded so record order sorts
    /// numerically for any fleet up to 10 000 shards.
    pub fn job_id(&self) -> String {
        format!("shard:{:04}", self.index)
    }

    /// The policy as the string used in records and artifacts.
    pub fn policy_name(&self) -> &'static str {
        match self.policy {
            AllocPolicy::Orig => "orig",
            AllocPolicy::Realloc => "realloc",
        }
    }

    /// The full provenance of this shard's sample series: everything
    /// that shapes the samples, and nothing that does not. Two shards
    /// produce the same series iff their provenances match, so its hash
    /// ([`ShardSpec::key_hex`]) is a sound content address.
    pub fn provenance(&self) -> String {
        let FsParams {
            size_bytes,
            bsize,
            fsize,
            ncg,
            maxcontig,
            minfree_pct,
            bytes_per_inode,
            inode_size,
        } = self.params;
        format!(
            "fleet-shard v{FLEET_FORMAT_VERSION}\n\
             params size={size_bytes} bsize={bsize} fsize={fsize} ncg={ncg} \
             maxcontig={maxcontig} minfree={minfree_pct} bpi={bytes_per_inode} \
             isize={inode_size}\n\
             policy {}\n\
             config {}\n\
             defrag {}\n",
            self.policy_name(),
            self.config.fingerprint(),
            self.defrag
                .as_ref()
                .map_or_else(|| "none".to_string(), |d| d.fingerprint())
        )
    }

    /// The 16-hex content address of this shard's artifact.
    pub fn key_hex(&self) -> String {
        format!("{:016x}", fnv1a(self.provenance().as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic_and_independent() {
        let spec = FleetSpec::new(64, 7, 30);
        assert_eq!(spec.shard(9), spec.shard(9));
        assert_eq!(spec.shard(9).key_hex(), spec.shard(9).key_hex());
        // Distinct shards are distinct draws; distinct fleet seeds
        // reshuffle everything.
        assert_ne!(spec.shard(0).provenance(), spec.shard(1).provenance());
        assert_ne!(
            spec.shard(0).key_hex(),
            FleetSpec::new(64, 8, 30).shard(0).key_hex()
        );
    }

    #[test]
    fn shards_are_heterogeneous_but_valid() {
        let spec = FleetSpec::new(64, 7, 10);
        let mut sizes = std::collections::BTreeSet::new();
        let mut policies = std::collections::BTreeSet::new();
        let mut defragged = 0u32;
        for i in 0..64 {
            let s = spec.shard(i);
            if let Some(d) = &s.defrag {
                defragged += 1;
                assert!(DEFRAG_BUDGET_MENU.contains(&d.moves_per_day));
            }
            assert_eq!(s.index, i);
            assert_eq!(s.config.days, 10);
            sizes.insert(s.params.size_bytes);
            policies.insert(s.policy_name());
            assert!(NCG_MENU.contains(&s.params.ncg));
            assert!((0.55..0.85).contains(&s.config.plateau_util));
            assert!(s.config.peak_util <= 0.92);
            assert!(s.config.peak_util > s.config.plateau_util);
            // The workload must fit the drawn volume.
            assert!(s.params.data_capacity_bytes() > 0);
        }
        assert!(sizes.len() >= 3, "size menu exercised: {sizes:?}");
        assert_eq!(policies.len(), 2, "both policies drawn");
        // The ~1-in-4 defragmentation draw: some shards run a pass,
        // most do not.
        assert!(
            (1..32).contains(&defragged),
            "defrag drawn by {defragged} of 64 shards"
        );
    }

    #[test]
    fn job_ids_sort_numerically() {
        let spec = FleetSpec::new(200, 1, 2);
        let mut ids: Vec<String> = (0..200).map(|i| spec.shard(i).job_id()).collect();
        let sorted = ids.clone();
        ids.sort();
        assert_eq!(ids, sorted);
    }
}
