//! Fleet exhibits: per-day percentile tables rendered from the
//! accumulator.
//!
//! One TSV per metric, one row per day, p50/p90/p99 columns per policy.
//! Rendering happens once, after the engine drains, over the finished
//! [`FleetAccum`] — the render pass itself is single-threaded and
//! canonical, so exhibit bytes depend only on accumulator state, which
//! is itself fold-order-independent.

use std::fmt::Write as _;

use crate::accum::{FleetAccum, Metric, POLICIES};

/// Renders the per-day percentile table for `metric`.
///
/// Days where a policy has no folded samples (e.g. a single-policy
/// fleet, or shards that failed) render as `-` so the table shape stays
/// fixed.
pub fn render(accum: &FleetAccum, metric: Metric) -> String {
    let mut out =
        String::from("day\torig_p50\torig_p90\torig_p99\trealloc_p50\trealloc_p90\trealloc_p99\n");
    for day in 0..accum.days() {
        let _ = write!(out, "{day}");
        for policy in 0..POLICIES {
            match accum.percentiles(metric, policy, day) {
                Some((p50, p90, p99)) => {
                    let _ = write!(out, "\t{p50:.3}\t{p90:.3}\t{p99:.3}");
                }
                None => out.push_str("\t-\t-\t-"),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardSample;

    #[test]
    fn tables_have_fixed_shape_and_three_decimals() {
        let a = FleetAccum::new(2);
        a.fold(
            0,
            &[
                ShardSample {
                    day: 0,
                    layout: 0.875,
                    freefrag: 0.25,
                    util: 0.7,
                },
                ShardSample {
                    day: 1,
                    layout: 0.85,
                    freefrag: 0.3,
                    util: 0.7,
                },
            ],
            10,
        );
        let tsv = render(&a, Metric::Layout);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 3, "header + one row per day");
        assert_eq!(
            lines[0],
            "day\torig_p50\torig_p90\torig_p99\trealloc_p50\trealloc_p90\trealloc_p99"
        );
        // One orig shard: all three percentiles are its value; realloc
        // columns are placeholders.
        assert_eq!(lines[1], "0\t0.876\t0.876\t0.876\t-\t-\t-");
        assert!(lines[2].starts_with("1\t0.850\t"));
        let frag = render(&a, Metric::FreeFrag);
        assert!(frag.lines().nth(1).unwrap().starts_with("0\t0.250\t"));
    }
}
