//! The deterministic generator behind fleet-spec expansion.
//!
//! splitmix64 (Steele, Lea & Flood's `SplittableRandom` finalizer): a
//! stateless-feeling, jump-free mixer whose whole state is one `u64`.
//! The fleet uses one independent instance per shard, seeded from the
//! fleet seed and the shard index, so any shard's parameters can be
//! re-derived in isolation — no sequential draw order to replay, which
//! is what keeps spec expansion order-free and resumable.

/// A splitmix64 pseudo-random generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw from `[lo, hi)`.
    pub fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[(self.next_u64() % items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_draws_are_unit_interval_and_spread() {
        let mut r = SplitMix64::new(7);
        let draws: Vec<f64> = (0..1000).map(|_| r.next_f64()).collect();
        assert!(draws.iter().all(|&v| (0.0..1.0).contains(&v)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
        let lo = draws.iter().filter(|&&v| v < 0.5).count();
        assert!((400..600).contains(&lo), "{lo} draws below 0.5");
    }

    #[test]
    fn pick_and_range_stay_in_bounds() {
        let mut r = SplitMix64::new(3);
        let items = [8u64, 12, 16, 24];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(*r.pick(&items));
            let v = r.in_range(0.55, 0.85);
            assert!((0.55..0.85).contains(&v));
        }
        assert_eq!(seen.len(), items.len(), "every choice eventually drawn");
    }
}
