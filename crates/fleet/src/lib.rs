//! Sharded fleet aging: the paper's protocol, at population scale.
//!
//! A single harness run ages one volume and asks how its layout decays.
//! This crate asks the population question instead: across *thousands*
//! of independently seeded volumes — heterogeneous sizes, group counts,
//! utilization trajectories, and workload intensities — what do the
//! percentiles of layout score and free-space fragmentation look like,
//! day by day, per allocation policy?
//!
//! The pieces:
//!
//! * [`spec`] — a [`spec::FleetSpec`] deterministically expands a
//!   `(shards, fleet_seed, days)` triple into per-shard volume
//!   parameters, policy, and workload configuration; every shard's
//!   provenance hashes to a content address for caching.
//! * [`sampler`] — the splitmix64 generator behind that expansion.
//! * [`shard`] — [`shard::run_shard`] ages one volume through the day
//!   tap ([`aging::replay_tapped`]), streaming one
//!   [`shard::ShardSample`] per day, and checkpoints the sample series
//!   through the content-addressed [`exp::ArtifactStore`] (atomic
//!   install, checksum validation, quarantine on damage) so a resumed
//!   fleet never re-ages a finished shard.
//! * [`accum`] — [`accum::FleetAccum`], the streaming aggregator:
//!   per-(policy, day) fixed-bucket [`obs::metrics::Histogram`]s that
//!   samples fold into as each shard finishes. Every component of the
//!   fold is commutative (relaxed atomic adds), so any completion order
//!   — and therefore any worker count — produces byte-identical
//!   exhibits, and memory stays `O(days × buckets)`, independent of the
//!   fleet size.
//! * [`exhibit`] — renders the accumulator into the fleet TSVs
//!   (p50/p90/p99 by day, per policy).
//! * [`driver`] — [`driver::run_fleet`] runs the shards as a supervised
//!   DAG on [`exp::run_jobs`] (panic isolation, deterministic retries,
//!   deadlines) and writes `runs.jsonl` plus the exhibits.
//!
//! # Example
//!
//! ```
//! use fleet::FleetSpec;
//!
//! let spec = FleetSpec::new(64, 7, 30);
//! let a = spec.shard(0);
//! let b = spec.shard(1);
//! // Expansion is deterministic, and shards are independent draws.
//! assert_eq!(a.provenance(), spec.shard(0).provenance());
//! assert_ne!(a.provenance(), b.provenance());
//! ```

pub mod accum;
pub mod driver;
pub mod exhibit;
pub mod sampler;
pub mod shard;
pub mod spec;

pub use accum::{policy_index, FleetAccum, Metric};
pub use driver::{run_fleet, FleetOptions, FleetSummary};
pub use exhibit::render;
pub use sampler::SplitMix64;
pub use shard::{run_shard, ShardOutput, ShardSample};
pub use spec::{FleetSpec, ShardSpec, FLEET_FORMAT_VERSION};
