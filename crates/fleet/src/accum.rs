//! The streaming fleet aggregator: constant memory, any fold order.
//!
//! A fleet produces `shards × days` samples, but the exhibits only need
//! per-day percentiles per policy. [`FleetAccum`] therefore keeps one
//! fixed-bucket [`Histogram`] per (policy, day, metric) — `O(days ×
//! buckets)` memory however many shards fold in — and shards stream
//! their day series into it the moment they finish.
//!
//! Determinism falls out of commutativity: every component of a fold is
//! a relaxed atomic add (or max), so any interleaving of concurrent
//! folds — any worker count, any completion order — leaves the
//! accumulator in the identical state, and the rendered exhibit in the
//! identical bytes. No lock, no sorting pass, no buffering of the fleet.
//!
//! Both fleet metrics (layout score, free-space fragmentation) live in
//! `[0, 1]`; samples are scaled by [`SCALE`] and bucketed at `1/SCALE`
//! resolution, which is finer than the three decimals the exhibits
//! print.

use ffs::AllocPolicy;
use obs::metrics::Histogram;

use crate::shard::ShardSample;

/// Fixed-point scale for `[0, 1]` samples: three decimal digits plus
/// headroom so rendered percentiles (`{:.3}`) are exact at bucket
/// resolution.
pub const SCALE: f64 = 1000.0;

/// Number of policies the fleet distinguishes (orig, realloc).
pub const POLICIES: usize = 2;

/// The accumulator's index for an allocation policy.
pub fn policy_index(policy: AllocPolicy) -> usize {
    match policy {
        AllocPolicy::Orig => 0,
        AllocPolicy::Realloc => 1,
    }
}

/// The two per-day fleet metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// End-of-day aggregate layout score.
    Layout,
    /// End-of-day free-space fragmentation
    /// (`1 − clusterable_fraction`).
    FreeFrag,
}

/// Upper-inclusive bounds `0, 2, 4, …, 1000` — 501 buckets over the
/// scaled unit interval, 0.002 resolution.
fn unit_bounds() -> Vec<u64> {
    (0..=500).map(|i| i * 2).collect()
}

fn scaled(v: f64) -> u64 {
    (v.clamp(0.0, 1.0) * SCALE).round() as u64
}

/// The streaming fleet aggregator. See the module docs for the memory
/// and determinism contract.
#[derive(Debug)]
pub struct FleetAccum {
    days: u32,
    /// `POLICIES × days` histograms, indexed `policy * days + day`.
    layout: Vec<Histogram>,
    freefrag: Vec<Histogram>,
    /// Per-shard total op counts: `count()` = shards folded, `sum()` =
    /// fleet-wide ops replayed.
    ops: Histogram,
}

impl FleetAccum {
    /// Creates an accumulator for a fleet aged `days` days.
    pub fn new(days: u32) -> FleetAccum {
        let bounds = unit_bounds();
        let make = || -> Vec<Histogram> {
            (0..POLICIES * days as usize)
                .map(|_| Histogram::new(&bounds))
                .collect()
        };
        FleetAccum {
            days,
            layout: make(),
            freefrag: make(),
            ops: Histogram::new(obs::bounds::POW2),
        }
    }

    /// The fleet horizon this accumulator covers.
    pub fn days(&self) -> u32 {
        self.days
    }

    fn slot(&self, metric: Metric, policy: usize, day: u32) -> &Histogram {
        assert!(policy < POLICIES, "policy index {policy} out of range");
        assert!(day < self.days, "day {day} beyond horizon {}", self.days);
        let i = policy * self.days as usize + day as usize;
        match metric {
            Metric::Layout => &self.layout[i],
            Metric::FreeFrag => &self.freefrag[i],
        }
    }

    /// Folds one finished shard's day series and op count in. Atomic and
    /// commutative: concurrent folds in any order produce the identical
    /// accumulator state.
    pub fn fold(&self, policy: usize, samples: &[ShardSample], ops: u64) {
        for s in samples {
            self.slot(Metric::Layout, policy, s.day)
                .observe(scaled(s.layout));
            self.slot(Metric::FreeFrag, policy, s.day)
                .observe(scaled(s.freefrag));
        }
        self.ops.observe(ops);
    }

    /// Folds another accumulator (same horizon) into this one — the
    /// merge half of a hierarchical aggregation.
    pub fn merge_from(&self, other: &FleetAccum) {
        assert_eq!(self.days, other.days, "merged fleets must share a horizon");
        for (a, b) in self.layout.iter().zip(&other.layout) {
            a.merge_from(b);
        }
        for (a, b) in self.freefrag.iter().zip(&other.freefrag) {
            a.merge_from(b);
        }
        self.ops.merge_from(&other.ops);
    }

    /// The (p50, p90, p99) of `metric` for `policy` on `day`, in
    /// original `[0, 1]` units. `None` when no shard of that policy has
    /// reached that day.
    pub fn percentiles(&self, metric: Metric, policy: usize, day: u32) -> Option<(f64, f64, f64)> {
        let h = self.slot(metric, policy, day);
        Some((
            h.quantile(0.50)? as f64 / SCALE,
            h.quantile(0.90)? as f64 / SCALE,
            h.quantile(0.99)? as f64 / SCALE,
        ))
    }

    /// Workload operations replayed across every folded shard.
    pub fn total_ops(&self) -> u64 {
        self.ops.sum()
    }

    /// How many shards have folded in.
    pub fn shards_folded(&self) -> u64 {
        self.ops.count()
    }

    /// Total histogram buckets held — the accumulator's memory footprint
    /// in units of one `u64` counter. A function of the horizon only,
    /// never of the shard count: the constant-memory guard pins this.
    pub fn footprint_buckets(&self) -> u64 {
        let per = |hists: &[Histogram]| -> u64 {
            hists.iter().map(|h| h.bucket_counts().len() as u64).sum()
        };
        per(&self.layout) + per(&self.freefrag) + self.ops.bucket_counts().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(day: u32, layout: f64, freefrag: f64) -> ShardSample {
        ShardSample {
            day,
            layout,
            freefrag,
            util: 0.7,
        }
    }

    fn series(days: u32, base: f64) -> Vec<ShardSample> {
        (0..days)
            .map(|d| sample(d, base - 0.01 * d as f64, 0.1 + 0.01 * d as f64))
            .collect()
    }

    #[test]
    fn percentiles_come_back_in_unit_scale() {
        let a = FleetAccum::new(3);
        for (i, base) in [0.90, 0.80, 0.70, 0.60].iter().enumerate() {
            a.fold(0, &series(3, *base), 100 + i as u64);
        }
        let (p50, p90, p99) = a.percentiles(Metric::Layout, 0, 0).unwrap();
        assert!((0.0..=1.0).contains(&p50));
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert_eq!(p99, 0.90);
        // No realloc shard folded: that policy has no percentiles.
        assert_eq!(a.percentiles(Metric::Layout, 1, 0), None);
        assert_eq!(a.shards_folded(), 4);
        assert_eq!(a.total_ops(), 100 + 101 + 102 + 103);
    }

    #[test]
    fn fold_order_and_merge_are_equivalent() {
        let shards: Vec<Vec<ShardSample>> =
            (0..8).map(|i| series(4, 0.95 - 0.05 * i as f64)).collect();
        let forward = FleetAccum::new(4);
        let reverse = FleetAccum::new(4);
        let halves = FleetAccum::new(4);
        let lo = FleetAccum::new(4);
        let hi = FleetAccum::new(4);
        for (i, s) in shards.iter().enumerate() {
            forward.fold(i % 2, s, 10 + i as u64);
            if i < 4 {
                lo.fold(i % 2, s, 10 + i as u64);
            } else {
                hi.fold(i % 2, s, 10 + i as u64);
            }
        }
        for (i, s) in shards.iter().enumerate().rev() {
            reverse.fold(i % 2, s, 10 + i as u64);
        }
        halves.merge_from(&lo);
        halves.merge_from(&hi);
        for acc in [&reverse, &halves] {
            for day in 0..4 {
                for policy in 0..POLICIES {
                    for metric in [Metric::Layout, Metric::FreeFrag] {
                        assert_eq!(
                            acc.percentiles(metric, policy, day),
                            forward.percentiles(metric, policy, day)
                        );
                    }
                }
            }
            assert_eq!(acc.total_ops(), forward.total_ops());
            assert_eq!(acc.shards_folded(), forward.shards_folded());
        }
    }

    #[test]
    fn footprint_is_independent_of_shard_count() {
        // The ISSUE's constant-memory guard: fold 16 shards into one
        // accumulator and 256 into another; the footprint must not move.
        let small = FleetAccum::new(30);
        let large = FleetAccum::new(30);
        for i in 0..16u64 {
            small.fold((i % 2) as usize, &series(30, 0.9), i);
        }
        for i in 0..256u64 {
            large.fold((i % 2) as usize, &series(30, 0.9), i);
        }
        assert_eq!(small.footprint_buckets(), large.footprint_buckets());
        assert_eq!(small.shards_folded(), 16);
        assert_eq!(large.shards_folded(), 256);
        // And the footprint is a function of the horizon.
        assert!(FleetAccum::new(60).footprint_buckets() > small.footprint_buckets());
    }

    #[test]
    fn out_of_range_samples_clamp_into_the_unit_interval() {
        let a = FleetAccum::new(1);
        a.fold(0, &[sample(0, -0.5, 1.5)], 1);
        let (p50, _, p99) = a.percentiles(Metric::Layout, 0, 0).unwrap();
        assert_eq!(p50, 0.0);
        assert_eq!(p99, 0.0);
        let (f50, _, _) = a.percentiles(Metric::FreeFrag, 0, 0).unwrap();
        assert_eq!(f50, 1.0);
    }

    #[test]
    #[should_panic(expected = "beyond horizon")]
    fn folding_past_the_horizon_is_a_bug() {
        FleetAccum::new(2).fold(0, &[sample(2, 0.5, 0.5)], 1);
    }
}
