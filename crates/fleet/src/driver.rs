//! The fleet driver: shards as a supervised job DAG, exhibits after.
//!
//! Every shard becomes one dependency-free job on the [`exp`] engine,
//! inheriting its supervision whole: panic isolation, deterministic
//! retry with simulated backoff, op-budget deadlines delivered through
//! the replay's cancel token, and one structured record per shard in
//! `runs.jsonl`.
//!
//! Determinism with concurrency comes from splitting the run in two:
//! while the engine is live, finished shards only *fold* into the
//! [`FleetAccum`] (commutative atomic adds — any completion order, any
//! worker count, identical state); rendering happens once, after the
//! engine drains, on the main thread in canonical order. `--jobs N`
//! can therefore never change an output byte.
//!
//! Resume needs no journal surgery: every finished shard checkpointed
//! its sample series in the content-addressed store, so a re-run hits
//! the cache for finished shards (zero replay ops) and only ages the
//! ones the crash took. A prior journal passed via `resume_run` marks
//! those reloads with `"resumed":"true"` so the report can tell a warm
//! resume from an ordinary cache hit.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use exp::{run_jobs, ArtifactStore, CacheStatus, JobPolicy, JobSpec, Metrics, RunRecord};

use crate::accum::{policy_index, FleetAccum, Metric};
use crate::exhibit;
use crate::shard::run_shard;
use crate::spec::FleetSpec;

/// Group accumulators the shard folds spread over before the root
/// merge. Fixed — never the worker count — so the grouping itself is
/// deterministic, although merge commutativity already guarantees the
/// rendered bytes for any grouping.
const MERGE_GROUPS: u32 = 8;

/// Options for one fleet run, mirroring the harness CLI flags.
#[derive(Clone, Debug)]
pub struct FleetOptions {
    /// Number of shards (independent volumes) to age.
    pub shards: u32,
    /// Master seed the shard draws derive from.
    pub fleet_seed: u64,
    /// Aging horizon in days, shared by every shard.
    pub days: u32,
    /// Worker threads for the job DAG (0 = one per core, capped at 8).
    pub jobs: usize,
    /// Directory for the fleet TSVs and `runs.jsonl`.
    pub out_dir: String,
    /// Shard-checkpoint store directory (`<out_dir>/cache` when unset).
    pub cache_dir: Option<String>,
    /// Disables shard checkpointing entirely.
    pub no_cache: bool,
    /// Retries granted to transiently failing shards (0 = fail fast).
    pub max_retries: u32,
    /// Per-shard operation budget; a replay that exceeds it is cancelled
    /// at the next day boundary (0 = no deadline).
    pub job_deadline_ops: u64,
    /// A prior fleet `runs.jsonl`: shards it records as `ok` reload from
    /// their checkpoints and are marked `resumed` in the new journal.
    pub resume_run: Option<String>,
    /// Chaos hook: the named shard job panics, exercising panic
    /// isolation and resume end to end.
    pub chaos_kill: Option<String>,
    /// Enables observability and writes the captured metrics to this
    /// path as `metrics.json`.
    pub metrics: Option<String>,
    /// Renders a live `shards done / total + ETA` line on stderr while
    /// the fleet ages. Off by default; output files are byte-identical
    /// either way.
    pub progress: bool,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            shards: 64,
            fleet_seed: 7,
            days: 30,
            jobs: 0,
            out_dir: "fleet-results".into(),
            cache_dir: None,
            no_cache: false,
            max_retries: 0,
            job_deadline_ops: 0,
            resume_run: None,
            chaos_kill: None,
            metrics: None,
            progress: false,
        }
    }
}

impl FleetOptions {
    /// The worker-pool size the engine should use.
    pub fn worker_count(&self) -> usize {
        if self.jobs > 0 {
            return self.jobs;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    }

    /// Where shard checkpoints live.
    pub fn cache_path(&self) -> PathBuf {
        match &self.cache_dir {
            Some(d) => PathBuf::from(d),
            None => PathBuf::from(&self.out_dir).join("cache"),
        }
    }
}

/// A completed fleet run.
#[derive(Debug)]
pub struct FleetSummary {
    /// Shards the fleet specified.
    pub shards: u32,
    /// Shards that finished and folded into the exhibits.
    pub shards_ok: u32,
    /// Workload operations replayed across the fleet (cache hits
    /// contribute zero).
    pub total_ops: u64,
    /// Damaged checkpoints quarantined during the run.
    pub quarantined: u32,
    /// The accumulator's footprint in histogram buckets — a function of
    /// the horizon, never of `shards`.
    pub accum_buckets: u64,
    /// The rendered layout-score exhibit.
    pub layout_tsv: String,
    /// The rendered free-fragmentation exhibit.
    pub freefrag_tsv: String,
    /// `(job id, reason)` for every shard that did not finish.
    pub failures: Vec<(String, String)>,
}

impl FleetSummary {
    /// Whether every shard folded into the exhibits.
    pub fn all_ok(&self) -> bool {
        self.shards_ok == self.shards
    }

    /// One line summarizing how degraded the fleet was.
    pub fn degradation_line(&self) -> String {
        if self.all_ok() {
            format!("fleet: all {} shards ok", self.shards)
        } else {
            format!(
                "fleet degraded: {} of {} shards ok ({} lost)",
                self.shards_ok,
                self.shards,
                self.failures.len()
            )
        }
    }
}

/// Ages the fleet described by `opts` and writes `runs.jsonl`,
/// `fleet_layout.tsv`, and `fleet_freefrag.tsv` under `opts.out_dir`.
///
/// Failed shards degrade the exhibits (their samples are simply absent
/// from the percentile pools) rather than aborting the fleet; the
/// summary and the synthetic `fleet` journal record carry the damage.
pub fn run_fleet(opts: &FleetOptions) -> Result<FleetSummary, String> {
    // `--progress` rides on the observability counters, so it force-
    // enables them; exhibits are byte-identical with obs on or off, so
    // the flag can never change an output file.
    if opts.metrics.is_some() || opts.progress {
        obs::reset();
        obs::set_enabled(true);
    }
    let spec = FleetSpec::new(opts.shards, opts.fleet_seed, opts.days);
    // Two-level aggregation: shards fold into a fixed set of group
    // accumulators while the engine is live; the root merges the groups
    // once it drains. Folding and merging are commutative, so the root
    // ends up bit-identical to flat folding (the driver test pins this)
    // while each group sees 1/MERGE_GROUPS of the fold contention.
    let accum = Arc::new(FleetAccum::new(opts.days));
    let ngroups = MERGE_GROUPS.min(opts.shards).max(1);
    let groups: Vec<Arc<FleetAccum>> = (0..ngroups)
        .map(|_| Arc::new(FleetAccum::new(opts.days)))
        .collect();
    let store = (!opts.no_cache).then(|| ArtifactStore::new(opts.cache_path()));

    // Shards a prior journal finished: their cache hits get a `resumed`
    // marker. The checkpoints themselves, not the journal, carry the
    // resume — a shard absent here but present in the store still hits.
    let prior_ok: BTreeSet<String> = match &opts.resume_run {
        Some(path) => {
            let text =
                fs::read_to_string(path).map_err(|e| format!("resume journal {path}: {e}"))?;
            text.lines()
                .filter_map(|line| {
                    let job = RunRecord::field_str(line, "job")?;
                    let status = RunRecord::field_str(line, "status")?;
                    (status == "ok").then_some(job)
                })
                .collect()
        }
        None => Default::default(),
    };

    let t0 = Instant::now();
    let mut jobs: Vec<JobSpec<()>> = Vec::with_capacity(opts.shards as usize);
    for i in 0..opts.shards {
        let shard = spec.shard(i);
        let jid = shard.job_id();
        let was_ok = prior_ok.contains(&jid);
        let accum = Arc::clone(&groups[(i % ngroups) as usize]);
        let store = store.clone();
        let chaos = opts.chaos_kill.clone();
        let job_id = jid.clone();
        jobs.push(
            JobSpec::new(&job_id, &[], move |ctx| {
                if chaos.as_deref() == Some(jid.as_str()) {
                    panic!("chaos kill: {jid}");
                }
                let _shard_span = obs::span!("fleet:shard");
                let wall = Instant::now();
                let out = run_shard(store.as_ref(), &shard, Some(ctx.cancel_token()))?;
                // Fold exactly once per shard: success terminates the
                // job, and a failed attempt reaches none of this.
                accum.fold(policy_index(shard.policy), &out.samples, out.ops);
                obs::counter!("fleet.shards_done", 1);
                obs::hist!(
                    "fleet.shard_wall_us",
                    obs::bounds::TIME_US,
                    wall.elapsed().as_micros() as u64
                );
                ctx.metrics.cache = Some(out.cache);
                ctx.metrics.key = Some(shard.key_hex());
                ctx.metrics.ops = Some(out.ops);
                ctx.metrics.note("policy", shard.policy_name());
                if let Some(d) = &shard.defrag {
                    ctx.metrics.note("defrag", d.label());
                }
                if was_ok && out.cache == CacheStatus::Hit {
                    ctx.metrics.note("resumed", "true");
                }
                if let Some(q) = &out.quarantined {
                    ctx.metrics.note("quarantined", q.display());
                }
                Ok(())
            })
            .with_policy(JobPolicy {
                max_retries: opts.max_retries,
                deadline_ops: opts.job_deadline_ops,
            }),
        );
    }

    // The live progress line: a monitor thread reads the global
    // `fleet.shards_done` counter and `fleet.shard_wall_us` histogram —
    // the same instruments `--metrics` captures — and rewrites one
    // stderr line until the engine drains. Stderr only; no output file
    // sees a byte of it.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let monitor = opts.progress.then(|| {
        let stop = Arc::clone(&stop);
        let total = opts.shards as u64;
        let workers = opts.worker_count().max(1) as f64;
        std::thread::spawn(move || {
            use std::sync::atomic::Ordering;
            let done_ctr = obs::registry().counter("fleet.shards_done");
            let wall_hist = obs::registry().histogram("fleet.shard_wall_us", obs::bounds::TIME_US);
            loop {
                let done = done_ctr.get().min(total);
                let eta = match wall_hist.count() {
                    0 => "?".into(),
                    n => {
                        let avg_us = wall_hist.sum() as f64 / n as f64;
                        let left = avg_us * (total - done) as f64 / workers / 1e6;
                        format!("{left:.0}s")
                    }
                };
                eprint!("\rfleet: {done}/{total} shards done, eta {eta}    ");
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
            eprintln!();
        })
    });
    let run = {
        let _fleet_span = obs::span!("fleet");
        run_jobs(jobs, opts.worker_count())
    };
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(h) = monitor {
        let _ = h.join();
    }
    let run = run?;
    let wall = t0.elapsed().as_secs_f64();
    // Merge the group accumulators into the root, in index order
    // (though any order renders the same bytes — merge is commutative).
    for g in &groups {
        accum.merge_from(g);
    }

    let shards_ok = run.records.iter().filter(|r| r.status == "ok").count() as u32;
    let failures: Vec<(String, String)> = run
        .records
        .iter()
        .filter(|r| r.status != "ok")
        .map(|r| {
            let why = r
                .error
                .clone()
                .unwrap_or_else(|| format!("status {}", r.status));
            (r.job.clone(), why)
        })
        .collect();
    let quarantined = run
        .records
        .iter()
        .filter(|r| r.metrics.notes.iter().any(|(k, _)| k == "quarantined"))
        .count() as u32;

    // One synthetic fleet-level record so `harness report` and the bench
    // gate see the whole fleet as a job (ops/sec = fleet throughput).
    let mut fleet_metrics = Metrics {
        ops: Some(accum.total_ops()),
        ..Metrics::default()
    };
    fleet_metrics.note("shards", opts.shards);
    fleet_metrics.note("shards_ok", shards_ok);
    fleet_metrics.note("fleet_seed", opts.fleet_seed);
    fleet_metrics.note("days", opts.days);
    fleet_metrics.note("accum_buckets", accum.footprint_buckets());
    let fleet_record = RunRecord {
        job: "fleet".into(),
        deps: Vec::new(),
        status: if shards_ok == opts.shards {
            "ok"
        } else {
            "failed"
        }
        .into(),
        error: None,
        wall_s: wall,
        attempts: 1,
        backoff_units: 0,
        metrics: fleet_metrics,
    };

    let layout_tsv = exhibit::render(&accum, Metric::Layout);
    let freefrag_tsv = exhibit::render(&accum, Metric::FreeFrag);

    let out_dir = PathBuf::from(&opts.out_dir);
    fs::create_dir_all(&out_dir).map_err(|e| format!("create {}: {e}", out_dir.display()))?;
    let mut jsonl = String::new();
    for rec in run.records.iter().chain(std::iter::once(&fleet_record)) {
        jsonl.push_str(&rec.to_json());
        jsonl.push('\n');
    }
    let write = |name: &str, text: &str| -> Result<(), String> {
        let path = out_dir.join(name);
        fs::write(&path, text).map_err(|e| format!("write {}: {e}", path.display()))
    };
    write("runs.jsonl", &jsonl)?;
    write("fleet_layout.tsv", &layout_tsv)?;
    write("fleet_freefrag.tsv", &freefrag_tsv)?;
    if opts.metrics.is_some() || opts.progress {
        obs::set_enabled(false);
    }
    if let Some(path) = &opts.metrics {
        let snap = obs::take_snapshot();
        fs::write(path, snap.to_json()).map_err(|e| format!("write {path}: {e}"))?;
    }

    Ok(FleetSummary {
        shards: opts.shards,
        shards_ok,
        total_ops: accum.total_ops(),
        quarantined,
        accum_buckets: accum.footprint_buckets(),
        layout_tsv,
        freefrag_tsv,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_merge_matches_flat_folding() {
        // The driver folds shards into MERGE_GROUPS group accumulators
        // and merges them into the root; a sequential flat fold of the
        // same shards must render the identical exhibits.
        let dir = std::env::temp_dir().join(format!("fleet-merge-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let opts = FleetOptions {
            shards: 10,
            fleet_seed: 11,
            days: 3,
            jobs: 4,
            out_dir: dir.to_string_lossy().into_owned(),
            no_cache: true,
            ..FleetOptions::default()
        };
        let summary = run_fleet(&opts).unwrap();
        assert!(summary.all_ok());

        let spec = FleetSpec::new(opts.shards, opts.fleet_seed, opts.days);
        let flat = FleetAccum::new(opts.days);
        for i in 0..opts.shards {
            let shard = spec.shard(i);
            let out = run_shard(None, &shard, None).unwrap();
            flat.fold(policy_index(shard.policy), &out.samples, out.ops);
        }
        assert_eq!(summary.layout_tsv, exhibit::render(&flat, Metric::Layout));
        assert_eq!(
            summary.freefrag_tsv,
            exhibit::render(&flat, Metric::FreeFrag)
        );
        assert_eq!(summary.total_ops, flat.total_ops());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn defaults_and_paths() {
        let o = FleetOptions::default();
        assert_eq!(o.shards, 64);
        assert_eq!(o.fleet_seed, 7);
        assert_eq!(o.days, 30);
        assert_eq!(o.cache_path(), PathBuf::from("fleet-results/cache"));
        assert!(o.worker_count() >= 1);
        let explicit = FleetOptions {
            cache_dir: Some("/tmp/elsewhere".into()),
            jobs: 3,
            ..FleetOptions::default()
        };
        assert_eq!(explicit.cache_path(), PathBuf::from("/tmp/elsewhere"));
        assert_eq!(explicit.worker_count(), 3);
    }

    #[test]
    fn degradation_lines_read_well() {
        let mut s = FleetSummary {
            shards: 8,
            shards_ok: 8,
            total_ops: 100,
            quarantined: 0,
            accum_buckets: 10,
            layout_tsv: String::new(),
            freefrag_tsv: String::new(),
            failures: Vec::new(),
        };
        assert!(s.all_ok());
        assert_eq!(s.degradation_line(), "fleet: all 8 shards ok");
        s.shards_ok = 7;
        s.failures.push(("shard:0003".into(), "panicked".into()));
        assert!(!s.all_ok());
        assert_eq!(
            s.degradation_line(),
            "fleet degraded: 7 of 8 shards ok (1 lost)"
        );
    }
}
