//! End-to-end fleet properties: worker-count determinism, crash resume
//! through the checkpoint store, and shard-count-independent memory.

use std::path::PathBuf;

use exp::RunRecord;
use fleet::{run_fleet, FleetOptions};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("fleet-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn read(dir: &std::path::Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// A journal digest that ignores the only nondeterministic field
/// (`wall_s`): equal fingerprints mean byte-equal supervision behavior.
fn fingerprint(jsonl: &str) -> Vec<String> {
    jsonl
        .lines()
        .map(|line| {
            let mut out = String::new();
            let mut rest = line;
            while let Some(i) = rest.find(",\"wall_s\":") {
                out.push_str(&rest[..i]);
                let tail = &rest[i + ",\"wall_s\":".len()..];
                let end = tail
                    .find(|c: char| {
                        !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+')
                    })
                    .unwrap_or(tail.len());
                rest = &tail[end..];
            }
            out.push_str(rest);
            out
        })
        .collect()
}

#[test]
fn worker_count_never_changes_an_output_byte() {
    let out_serial = tmpdir("det-serial");
    let out_pool = tmpdir("det-pool");
    let base = FleetOptions {
        shards: 24,
        fleet_seed: 11,
        days: 3,
        no_cache: true,
        ..FleetOptions::default()
    };
    let serial = run_fleet(&FleetOptions {
        jobs: 1,
        out_dir: out_serial.display().to_string(),
        ..base.clone()
    })
    .unwrap();
    let pool = run_fleet(&FleetOptions {
        jobs: 4,
        out_dir: out_pool.display().to_string(),
        ..base
    })
    .unwrap();
    assert!(serial.all_ok() && pool.all_ok());
    assert!(serial.total_ops > 0);
    assert_eq!(serial.total_ops, pool.total_ops);

    // The acceptance bar: byte-identical exhibits...
    assert_eq!(
        read(&out_serial, "fleet_layout.tsv"),
        read(&out_pool, "fleet_layout.tsv")
    );
    assert_eq!(
        read(&out_serial, "fleet_freefrag.tsv"),
        read(&out_pool, "fleet_freefrag.tsv")
    );
    // ...and the summaries match what was written.
    assert_eq!(serial.layout_tsv, pool.layout_tsv);
    assert_eq!(read(&out_serial, "fleet_layout.tsv"), serial.layout_tsv);

    // Journals agree on everything but wall time.
    assert_eq!(
        fingerprint(&read(&out_serial, "runs.jsonl")),
        fingerprint(&read(&out_pool, "runs.jsonl"))
    );
    let _ = std::fs::remove_dir_all(&out_serial);
    let _ = std::fs::remove_dir_all(&out_pool);
}

#[test]
fn a_killed_fleet_resumes_without_re_aging_finished_shards() {
    let out_a = tmpdir("resume-a");
    let out_b = tmpdir("resume-b");
    let out_c = tmpdir("resume-c");
    let cache = tmpdir("resume-cache");
    let base = FleetOptions {
        shards: 8,
        fleet_seed: 5,
        days: 2,
        jobs: 2,
        cache_dir: Some(cache.display().to_string()),
        ..FleetOptions::default()
    };

    // Run A: one shard job panics mid-fleet (the chaos hook stands in
    // for a crash); every other shard checkpoints.
    let killed = run_fleet(&FleetOptions {
        out_dir: out_a.display().to_string(),
        chaos_kill: Some("shard:0003".into()),
        ..base.clone()
    })
    .unwrap();
    assert!(!killed.all_ok());
    assert_eq!(killed.shards_ok, 7);
    assert_eq!(killed.failures[0].0, "shard:0003");

    // Run B resumes from A's journal: only the killed shard re-ages.
    let resumed = run_fleet(&FleetOptions {
        out_dir: out_b.display().to_string(),
        resume_run: Some(out_a.join("runs.jsonl").display().to_string()),
        ..base.clone()
    })
    .unwrap();
    assert!(resumed.all_ok());
    for line in read(&out_b, "runs.jsonl").lines() {
        let Some(job) = RunRecord::field_str(line, "job") else {
            continue;
        };
        if job == "fleet" {
            continue;
        }
        if job == "shard:0003" {
            assert_eq!(RunRecord::field_str(line, "cache").unwrap(), "miss");
            assert!(RunRecord::field_num(line, "ops").unwrap() > 0.0, "re-aged");
            assert!(RunRecord::field_str(line, "resumed").is_none());
        } else {
            assert_eq!(RunRecord::field_str(line, "cache").unwrap(), "hit");
            assert_eq!(
                RunRecord::field_num(line, "ops").unwrap(),
                0.0,
                "not re-aged"
            );
            assert_eq!(RunRecord::field_str(line, "resumed").unwrap(), "true");
        }
    }

    // The resumed fleet's exhibits equal a fresh uncached serial run's:
    // resume changed the cost, never the science.
    let fresh = run_fleet(&FleetOptions {
        out_dir: out_c.display().to_string(),
        jobs: 1,
        cache_dir: None,
        no_cache: true,
        ..base
    })
    .unwrap();
    assert!(fresh.all_ok());
    assert_eq!(
        read(&out_b, "fleet_layout.tsv"),
        read(&out_c, "fleet_layout.tsv")
    );
    assert_eq!(
        read(&out_b, "fleet_freefrag.tsv"),
        read(&out_c, "fleet_freefrag.tsv")
    );
    for d in [&out_a, &out_b, &out_c, &cache] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn accumulator_memory_is_independent_of_fleet_size() {
    let out_small = tmpdir("mem-small");
    let out_large = tmpdir("mem-large");
    let base = FleetOptions {
        days: 1,
        fleet_seed: 3,
        no_cache: true,
        ..FleetOptions::default()
    };
    let small = run_fleet(&FleetOptions {
        shards: 16,
        out_dir: out_small.display().to_string(),
        ..base.clone()
    })
    .unwrap();
    let large = run_fleet(&FleetOptions {
        shards: 256,
        out_dir: out_large.display().to_string(),
        ..base
    })
    .unwrap();
    assert!(small.all_ok() && large.all_ok());
    // 16× the shards, identical accumulator: O(days × buckets), not
    // O(fleet × days).
    assert_eq!(small.accum_buckets, large.accum_buckets);
    assert!(large.total_ops > small.total_ops);
    let _ = std::fs::remove_dir_all(&out_small);
    let _ = std::fs::remove_dir_all(&out_large);
}

#[test]
fn fleet_metrics_flow_into_the_snapshot() {
    let out = tmpdir("metrics");
    let snap_path = out.join("metrics.json");
    std::fs::create_dir_all(&out).unwrap();
    let summary = run_fleet(&FleetOptions {
        shards: 4,
        fleet_seed: 2,
        days: 1,
        jobs: 2,
        no_cache: true,
        out_dir: out.display().to_string(),
        metrics: Some(snap_path.display().to_string()),
        ..FleetOptions::default()
    })
    .unwrap();
    assert!(summary.all_ok());
    let snap = std::fs::read_to_string(&snap_path).unwrap();
    // The obs registry is process-global and other tests may run
    // concurrently, so assert presence, not exact counts.
    assert!(snap.contains("fleet.shards_done"), "{snap}");
    assert!(snap.contains("fleet.shard_wall_us"));
    assert!(snap.contains("fleet:shard"));
    let _ = std::fs::remove_dir_all(&out);
}
