//! Studying the aging methodology itself (Section 3 of the paper):
//! how does the synthetic workload's churn shape fragmentation, and how
//! does the "real file system" reference variant compare?
//!
//! ```text
//! cargo run --release --example aging_study [DAYS]
//! ```

use ffs_aging::prelude::*;

/// Replays a workload and returns the final aggregate layout score.
fn final_score(workload: &Workload, params: &FsParams, policy: AllocPolicy) -> f64 {
    replay(workload, params, policy, ReplayOptions::default())
        .expect("replay")
        .daily
        .last()
        .map_or(1.0, |d| d.layout_score)
}

fn main() {
    let days: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(90);
    let params = FsParams::paper_502mb();
    let capacity = params.data_capacity_bytes();
    let mut base = AgingConfig::paper(2024);
    base.days = days;
    if days < base.ramp_days {
        base.ramp_days = (days / 3).max(1);
    }

    // 1. The aging-validation comparison of Figure 1: the simulated
    //    workload vs the heavier-churn real-FS reference variant.
    let sim = generate(&base, params.ncg, capacity);
    let real = generate(&base.real_fs_variant(), params.ncg, capacity);
    println!("figure-1 style comparison at day {days} (original FFS policy):");
    println!(
        "  simulated workload: layout {:.3}",
        final_score(&sim, &params, AllocPolicy::Orig)
    );
    println!(
        "  real-FS reference:  layout {:.3}",
        final_score(&real, &params, AllocPolicy::Orig)
    );

    // 2. Sensitivity of fragmentation to the short-lived churn intensity
    //    (the knob the paper's NFS traces control).
    println!("\nshort-lived churn sensitivity (original FFS policy):");
    for mult in [0.25, 0.5, 1.0, 2.0] {
        let mut c = base.clone();
        c.short_pairs_per_day *= mult;
        let w = generate(&c, params.ncg, capacity);
        println!(
            "  {:>4.2}x short pairs/day -> layout {:.3}",
            mult,
            final_score(&w, &params, AllocPolicy::Orig)
        );
    }

    // 3. And to the delete-correlation structure: scattered deletions
    //    fragment much harder than cohort (project-cleanup) deletions.
    println!("\ndeletion-structure sensitivity (original FFS policy):");
    for scatter in [0.0, 0.4, 1.0] {
        let mut c = base.clone();
        c.scatter_deletes = scatter;
        let w = generate(&c, params.ncg, capacity);
        println!(
            "  scatter_deletes {:.1} -> layout {:.3}",
            scatter,
            final_score(&w, &params, AllocPolicy::Orig)
        );
    }
}
