//! The paper's headline experiment at a laptop-friendly scale: age two
//! file systems that differ only in their allocation policy, then compare
//! fragmentation and I/O performance.
//!
//! ```text
//! cargo run --release --example allocator_comparison [DAYS]
//! ```
//!
//! With `DAYS = 300` this is Figure 2 + Table 2 of the paper on the full
//! 502 MB geometry (takes a few seconds in release mode).

use ffs_aging::prelude::*;

fn main() {
    let days: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    let params = FsParams::paper_502mb();
    let disk = DiskParams::seagate_32430n();
    let mut config = AgingConfig::paper(1996);
    config.days = days;
    if days < config.ramp_days {
        config.ramp_days = (days / 3).max(1);
    }
    let workload = generate(&config, params.ncg, params.data_capacity_bytes());

    let mut results = Vec::new();
    for policy in [AllocPolicy::Orig, AllocPolicy::Realloc] {
        let aged = replay(&workload, &params, policy, ReplayOptions::default()).expect("replay");
        let last = *aged.daily.last().expect("at least one day");
        println!(
            "{:<14} day {:>3}: layout {:.3}, {} files, util {:.2}",
            policy.label(),
            last.day,
            last.layout_score,
            last.nfiles,
            last.utilization
        );
        results.push((policy, aged));
    }

    // Hot-file benchmark (Table 2): files modified in the last month.
    println!("\nhot-file benchmark (last 30 days):");
    println!(
        "{:<14} {:>7} {:>9} {:>10} {:>10}",
        "policy", "files", "layout", "read MB/s", "write MB/s"
    );
    for (policy, aged) in &results {
        let hot = aged.hot_files(30);
        let r = run_hot_files(&aged.fs, &hot, &disk);
        println!(
            "{:<14} {:>7} {:>9.3} {:>10.3} {:>10.3}",
            policy.label(),
            r.nfiles,
            r.layout_score(),
            r.read_mb_s,
            r.write_mb_s
        );
    }

    // Free-space structure: the realloc policy must leave enough large
    // clusters behind to keep working (the Smith94 observation).
    println!("\nfree-space clusters:");
    for (policy, aged) in &results {
        let st = free_space_stats(&aged.fs, 512);
        println!(
            "{:<14} {:>6} free blocks, {:>5.1}% in clusters >= maxcontig, longest {}",
            policy.label(),
            st.free_blocks,
            100.0 * st.clusterable_fraction(),
            st.longest_run
        );
    }
}
