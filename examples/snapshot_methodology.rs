//! The paper's data-collection pipeline, end to end: age a file system
//! while taking nightly snapshots, score fragmentation offline from the
//! snapshots, derive a replayable workload from the snapshot diffs, and
//! replay it — demonstrating the information loss that makes
//! snapshot-derived aging gentler than the activity it was derived from
//! (the Figure 1 gap).
//!
//! ```text
//! cargo run --release --example snapshot_methodology [DAYS]
//! ```

use aging::{diff_to_workload, Snapshot};
use ffs_aging::prelude::*;

fn main() {
    let days: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let params = FsParams::paper_502mb();
    let mut config = AgingConfig::paper(7);
    config.days = days;
    if days < config.ramp_days {
        config.ramp_days = (days / 3).max(1);
    }
    let w = generate(&config, params.ncg, params.data_capacity_bytes());

    // Age with a nightly snapshot job, like the paper's file server.
    let original = replay(
        &w,
        &params,
        AllocPolicy::Orig,
        ReplayOptions {
            snapshot_every_days: 1,
            ..ReplayOptions::default()
        },
    )
    .expect("replay");
    println!(
        "aged {} days; took {} nightly snapshots",
        days,
        original.snapshots.len()
    );

    // Offline scoring from the snapshots' block lists must agree with
    // the live file system.
    let last = original.snapshots.last().expect("snapshots taken");
    let offline = last.aggregate_layout(&params);
    assert_eq!(offline, original.fs.aggregate_layout());
    println!(
        "offline snapshot scoring: layout {:.4} over {} files ({:.1} MB)",
        offline.score(),
        last.entries.len(),
        last.live_bytes() as f64 / MB as f64
    );

    // The snapshots serialize to the text format the harness tools use.
    let text = last.to_text();
    let parsed = Snapshot::from_text(&text).expect("round trip");
    assert_eq!(&parsed, last);
    println!(
        "snapshot text format: {} lines, round-trips losslessly",
        text.lines().count()
    );

    // Derive a workload from the snapshot diffs and replay it: the
    // short-lived churn between snapshots is invisible, so the derived
    // run ages the file system more gently.
    let derived = diff_to_workload(
        &original.snapshots,
        &config,
        params.ncg,
        params.data_capacity_bytes(),
    );
    let stats = workload_stats(&derived);
    println!(
        "derived workload: {} ops ({} creates) vs original {} ops",
        stats.total_ops,
        stats.creates,
        workload_stats(&w).total_ops
    );
    let re = replay(
        &derived,
        &params,
        AllocPolicy::Orig,
        ReplayOptions::default(),
    )
    .expect("derived replay");
    println!(
        "day-{} layout: original {:.4}, snapshot-derived {:.4} (derived is gentler)",
        days - 1,
        original.daily.last().unwrap().layout_score,
        re.daily.last().unwrap().layout_score
    );
}
