//! A tour of the disk timing model: the raw-device baselines of Figure 4
//! and the three effects the paper's performance analysis rests on.
//!
//! ```text
//! cargo run --release --example disk_model_tour
//! ```

use ffs_aging::prelude::*;
use ffs_types::units::mb_per_sec;

fn main() {
    let p = DiskParams::seagate_32430n();
    println!("Seagate ST32430N model:");
    println!(
        "  capacity        {:.2} GB",
        p.capacity_bytes() as f64 / 1e9
    );
    println!("  revolution      {:.2} ms", p.rev_time_us() / 1000.0);
    println!("  media rate      {:.2} MB/s", p.media_mb_per_sec());
    println!("  average seek    {:.1} ms", p.avg_seek_ms);
    println!("  max transfer    {} KB", p.max_transfer_bytes / 1024);

    // Effect 1: the track buffer lets sequential reads stream at the
    // media rate despite host think time between requests.
    let r = raw_read_throughput(&p, 32 * MB);
    println!("\nraw sequential read:  {:.2} MB/s", r.mb_per_sec);

    // Effect 2: writes are unbuffered; back-to-back sequential writes
    // lose most of a rotation per 64 KB request.
    let w = raw_write_throughput(&p, 32 * MB);
    println!("raw sequential write: {:.2} MB/s", w.mb_per_sec);
    println!(
        "  (write/read ratio {:.2} - the lost-rotation effect)",
        w.mb_per_sec / r.mb_per_sec
    );

    // Effect 3: fragmentation penalty. Read the same 56 KB as one
    // contiguous cluster vs seven scattered blocks.
    let mut dev = Device::new(p.clone());
    dev.read(500_000, 16); // Position the head somewhere definite.
    let t0 = dev.now();
    dev.transfer(IoKind::Read, 1_000_000, 56 * 1024);
    let contig = dev.now() - t0;

    let mut dev = Device::new(p.clone());
    dev.read(500_000, 16);
    let t0 = dev.now();
    for i in 0..7u64 {
        // Blocks spread ~1.5 MB apart within a cylinder-group-sized span.
        dev.transfer(IoKind::Read, 1_000_000 + i * 3_000, 8 * 1024);
    }
    let scattered = dev.now() - t0;
    println!(
        "\n56 KB read, contiguous: {:.1} ms ({:.2} MB/s)",
        contig / 1000.0,
        mb_per_sec(56 * 1024, contig)
    );
    println!(
        "56 KB read, scattered:  {:.1} ms ({:.2} MB/s) - {:.1}x slower",
        scattered / 1000.0,
        mb_per_sec(56 * 1024, scattered),
        scattered / contig
    );

    // The same comparison for writes: the scattered case pays a
    // positioning delay per block, the contiguous case one per cluster.
    let mut dev = Device::new(p.clone());
    dev.read(500_000, 16);
    let t0 = dev.now();
    dev.transfer(IoKind::Write, 1_000_000, 56 * 1024);
    let contig_w = dev.now() - t0;
    let mut dev = Device::new(p);
    dev.read(500_000, 16);
    let t0 = dev.now();
    for i in 0..7u64 {
        dev.transfer(IoKind::Write, 1_000_000 + i * 3_000, 8 * 1024);
    }
    let scattered_w = dev.now() - t0;
    println!(
        "56 KB write, contiguous: {:.1} ms; scattered: {:.1} ms ({:.1}x slower)",
        contig_w / 1000.0,
        scattered_w / 1000.0,
        scattered_w / contig_w
    );
}
