//! Quickstart: age one small file system and print the daily layout
//! scores.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ffs_aging::prelude::*;

fn main() {
    // A 16 MB test file system with the paper's block geometry, a
    // 20-day scaled-down aging workload, and the realloc policy.
    let params = FsParams::small_test();
    let config = AgingConfig::small_test(20, 7);
    let workload = generate(&config, params.ncg, params.data_capacity_bytes());

    let stats = workload_stats(&workload);
    println!(
        "workload: {} ops ({} creates, {} deletes, {} rewrites), {:.1} MB written",
        stats.total_ops,
        stats.creates,
        stats.deletes,
        stats.rewrites,
        stats.bytes_written as f64 / MB as f64
    );

    let aged = replay(
        &workload,
        &params,
        AllocPolicy::Realloc,
        ReplayOptions::default(),
    )
    .expect("replay");

    println!("day  layout  util  files");
    for d in &aged.daily {
        println!(
            "{:>3}  {:.4}  {:.2}  {}",
            d.day, d.layout_score, d.utilization, d.nfiles
        );
    }

    // The simulator is fully checkable: verify every invariant of the
    // aged file system (allocation maps, counters, layout aggregates).
    assert_consistent(&aged.fs);
    println!("aged file system is consistent");
}
