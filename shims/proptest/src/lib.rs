//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the proptest API its property tests use:
//!
//! * [`Strategy`] with `prop_map`, implemented for integer and float
//!   ranges, tuples, and [`collection::vec`];
//! * `any::<T>()` for the primitive types the tests draw;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//!   [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (deterministic across runs — there is no
//! `proptest-regressions` persistence), and failing cases are reported
//! without shrinking. That trades minimal counterexamples for a zero
//! dependency footprint, which is what this environment requires.

use std::fmt;
use std::ops::Range;

/// Deterministic test-case generator (xoshiro256++, seeded from the test
/// name so every test draws an independent stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary string (FNV-1a).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut x = h;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed property assertion, carried out of the test body by
/// `prop_assert!`-style macros.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe mirror of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (the result of [`Strategy::boxed`]).
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start
                    .wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_inclusive_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128)
                    .wrapping_sub(*self.start() as u128)
                    .wrapping_add(1);
                self.start()
                    .wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_inclusive_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Strategy for any value of a primitive type (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Produces a strategy generating arbitrary values of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Primitive types `any::<T>()` can produce.
pub trait ArbitraryValue: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors of values drawn from `elem`, with a length in
    /// `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// A (possibly weighted) choice between boxed strategies — the engine
/// behind [`prop_oneof!`].
pub struct Union<V> {
    variants: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a uniform union over the given variants.
    pub fn new(variants: Vec<BoxedStrategy<V>>) -> Union<V> {
        Union::new_weighted(variants.into_iter().map(|s| (1, s)).collect())
    }

    /// Builds a union drawing each variant with frequency proportional to
    /// its weight.
    pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        assert!(!variants.is_empty());
        let total_weight = variants.iter().map(|&(w, _)| w as u64).sum();
        assert!(total_weight > 0, "all weights are zero");
        Union {
            variants,
            total_weight,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.variants {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Chooses among several strategies with a common value type, uniformly
/// or by `weight => strategy` arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the enclosing property if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fails the enclosing property if the two expressions differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} == {} failed: {:?} != {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}: {:?} != {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Fails the enclosing property if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} != {} failed: both were {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests. Each body runs `cases` times against freshly
/// generated inputs; a failing case panics with the generated input (no
/// shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $($(#[$attr:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    let values = ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                    let ($($arg,)+) = values.clone();
                    let mut run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(e) = run() {
                        panic!(
                            "property '{}' failed at case {}/{}:\n  {}\n  input: {:?}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            values
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("self-test");
        let s = crate::collection::vec(1u32..7, 1..20);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 20);
            assert!(v.iter().all(|&x| (1..7).contains(&x)));
        }
    }

    #[test]
    fn oneof_draws_every_variant() {
        let mut rng = crate::TestRng::deterministic("oneof");
        let s = prop_oneof![
            (0u32..1).prop_map(|_| 'a'),
            (0u32..1).prop_map(|_| 'b'),
            (0u32..1).prop_map(|_| 'c'),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro plumbing itself: arguments arrive in range, asserts
        /// pass through.
        #[test]
        fn macro_round_trip(x in 3u32..17, flip in any::<bool>(), v in crate::collection::vec(0u8..4, 0..5)) {
            prop_assert!((3..17).contains(&x));
            prop_assert_eq!(flip, !!flip);
            prop_assert!(v.len() < 5, "len was {}", v.len());
        }
    }
}
