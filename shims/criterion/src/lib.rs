//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the criterion API its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark is
//! timed with `std::time::Instant` over `sample_size` iterations and the
//! mean is printed — enough to compare policies and catch regressions by
//! eye, without criterion's statistical machinery.

use std::time::Instant;

/// Drives one benchmark body.
pub struct Bencher {
    iters: u32,
    /// Mean wall-clock nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one(label: &str, samples: u32, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: samples.max(1),
        mean_ns: 0.0,
    };
    f(&mut b);
    let (value, unit) = if b.mean_ns >= 1e9 {
        (b.mean_ns / 1e9, "s")
    } else if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "us")
    } else {
        (b.mean_ns, "ns")
    };
    println!("{label:<48} {value:>10.3} {unit}/iter ({} iters)", b.iters);
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup {
    /// Sets the iteration count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u32;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_time() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("self");
        g.sample_size(3);
        g.bench_function("spin", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        g.finish();
        c.bench_function("free", |b| b.iter(|| 1 + 1));
    }
}
