//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, seedable, and
//! statistically solid for simulation workloads. Streams differ from the
//! real `rand::rngs::StdRng` (which is ChaCha12); all results in this
//! repository are produced with this generator, so runs remain exactly
//! reproducible for a given seed.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] — the stand-in
/// for `Standard: Distribution<T>`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn uniformly from — the stand-in for
/// `SampleRange<T>`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // The span of an exclusive range always fits in u64 (it is
                // at most 2^64 - 1), so the draw reduces with one 64-bit
                // modulo; the value is identical to reducing in u128 but
                // avoids a libcall per draw in generation hot loops.
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                // A full-domain inclusive range has span 2^64: the modulo
                // is then the identity. Every other span fits in u64.
                let word = rng.next_u64();
                let reduced = match u64::try_from(span) {
                    Ok(s) => word % s,
                    Err(_) => word,
                };
                lo.wrapping_add(reduced as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_lie_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..=3);
            assert!(y <= 3);
            let z = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
