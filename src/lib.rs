//! # ffs-aging
//!
//! A full reproduction of Smith & Seltzer, *A Comparison of FFS Disk
//! Allocation Policies* (USENIX 1996), as a deterministic Rust
//! simulation.
//!
//! The paper asks one question: does the 4.4BSD block-reallocation
//! policy (`ffs_reallocblks`, "realloc") keep a file system less
//! fragmented than the traditional one-block-at-a-time FFS allocator as
//! the file system ages — and does that translate into throughput?
//! Answering it requires three systems, all provided here:
//!
//! * [`ffs`] — a block-layer FFS simulator: cylinder groups, fragments,
//!   inodes, directories, the indirect-block cylinder-group switch, and
//!   both allocation policies ([`ffs::AllocPolicy`]).
//! * [`aging`] — the paper's file-system aging methodology: a synthetic
//!   ten-month workload (long-lived snapshot files plus short-lived
//!   NFS-trace files) and a replayer that ages a file system and records
//!   the aggregate layout score day by day.
//! * [`disk`] — a timing model of the paper's Seagate ST32430N disk:
//!   seek curve, rotational position, track-buffer read-ahead, and the
//!   64 KB maximum transfer size, so layout quality becomes throughput
//!   exactly as in Section 5.
//!
//! [`iobench`] ties them together with the paper's two benchmarks
//! (sequential I/O sweep and the hot-file benchmark), and the `harness`
//! binary regenerates every table and figure (`harness all`).
//!
//! # Quickstart
//!
//! Age two file systems with the same workload and compare fragmentation:
//!
//! ```
//! use ffs_aging::prelude::*;
//!
//! let params = FsParams::small_test();        // 16 MB test geometry
//! let config = AgingConfig::small_test(10, 42); // 10 days, seed 42
//! let w = generate(&config, params.ncg, params.data_capacity_bytes());
//!
//! let orig = replay(&w, &params, AllocPolicy::Orig,
//!                   ReplayOptions::default()).unwrap();
//! let re = replay(&w, &params, AllocPolicy::Realloc,
//!                 ReplayOptions::default()).unwrap();
//!
//! let s_orig = orig.daily.last().unwrap().layout_score;
//! let s_re = re.daily.last().unwrap().layout_score;
//! assert!(s_re >= s_orig, "realloc should age at least as well");
//! ```
//!
//! The paper-scale experiment is the same code with
//! [`FsParams::paper_502mb`](ffs_types::FsParams::paper_502mb) and
//! [`AgingConfig::paper`](aging::AgingConfig::paper) — see the `examples/`
//! directory and DESIGN.md.

pub use aging;
pub use disk;
pub use ffs;
pub use ffs_types;
pub use iobench;

/// The most common imports, re-exported in one place.
pub mod prelude {
    pub use aging::{
        generate, replay, resume, workload_stats, AgingConfig, Checkpoint, ReplayOptions,
        ReplayResult, Workload,
    };
    pub use disk::{raw_read_throughput, raw_write_throughput, Device, FaultPlan, IoKind};
    pub use ffs::{
        assert_consistent, check, free_space_stats, inject_metadata_damage, layout_by_size, repair,
        size_bins_paper, AllocPolicy, Filesystem, RepairReport, Violation,
    };
    pub use ffs_types::{DiskParams, FsParams, KB, MB};
    pub use iobench::{run_hot_files, run_point, run_sweep, SeqBenchConfig};
}
