//! Crash-recovery integration tests: random metadata corruption must
//! always be repairable, and a power cut at *any* operation of a replay
//! must converge back onto the uninterrupted run's trajectory.
//!
//! These pin the invariant the fault model is built on: a torn update
//! damages only derived allocation state, the inode table stays intact,
//! and the repairing fsck rebuilds losslessly — so crash plus repair is
//! observationally equivalent to no crash at all.

use aging::{generate, replay, resume, AgingConfig, ReplayOptions, Workload};
use ffs::{check, inject_metadata_damage, repair, AllocPolicy, Filesystem};
use ffs_types::{FsParams, KB};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deliberately small workload so the every-op crash sweep stays cheap.
fn tiny_workload(days: u32, seed: u64) -> (FsParams, Workload) {
    let params = FsParams::small_test();
    let mut config = AgingConfig::small_test(days, seed);
    // A skeleton population and a low utilization target keep the
    // every-op sweep affordable; the churn mix is unchanged.
    config.initial_util = 0.05;
    config.plateau_util = 0.10;
    config.peak_util = 0.15;
    config.short_pairs_per_day = 8.0;
    config.long_creates_per_day = 4.0;
    config.long_modifies_per_day = 3.0;
    config.rewrites_per_day = 3.0;
    let w = generate(&config, params.ncg, params.data_capacity_bytes());
    (params, w)
}

/// Ages a file system with a seeded mix of creates, deletes, appends, and
/// rewrites — enough churn to make the allocation maps interesting.
fn scripted_fs(seed: u64) -> Filesystem {
    let mut fs = Filesystem::new(FsParams::small_test(), AllocPolicy::Realloc);
    let dirs = fs.mkdir_per_cg().expect("mkdir per group");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live = Vec::new();
    for day in 0..120u32 {
        match rng.gen_range(0..5) {
            0 | 1 => {
                let dir = dirs[rng.gen_range(0..dirs.len())];
                let size = rng.gen_range(1..200 * KB);
                if let Ok(ino) = fs.create(dir, size, day) {
                    live.push(ino);
                }
            }
            2 => {
                if !live.is_empty() {
                    let ino = live.swap_remove(rng.gen_range(0..live.len()));
                    fs.remove(ino).expect("remove live file");
                }
            }
            3 => {
                if let Some(&ino) =
                    live.get(rng.gen_range(0..live.len().max(1)) % live.len().max(1))
                {
                    let _ = fs.append(ino, rng.gen_range(1..64 * KB), day);
                }
            }
            _ => {
                if !live.is_empty() {
                    let ino = live[rng.gen_range(0..live.len())];
                    fs.rewrite(ino, day).expect("rewrite live file");
                }
            }
        }
    }
    fs
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Any seeded torn-update corruption, of any intensity, repairs back
    /// to a clean check — and without losing a single file, because the
    /// damage model only touches derived state.
    #[test]
    fn random_corruption_always_repairs(seed in any::<u64>(), hits in 1u32..12) {
        let mut fs = scripted_fs(seed);
        let applied = inject_metadata_damage(&mut fs, seed ^ 0xD00F_D00F, hits);
        prop_assert!(applied > 0);
        let nfiles = fs.nfiles();
        let report = repair(&mut fs);
        prop_assert!(check(&fs).is_empty(), "repair must converge");
        prop_assert!(report.files_removed.is_empty(), "derived-only damage is lossless");
        prop_assert_eq!(fs.nfiles(), nfiles);
        // Repair is idempotent: a second pass finds nothing.
        prop_assert!(repair(&mut fs).was_clean());
    }
}

#[test]
fn crash_at_every_op_converges() {
    let (params, w) = tiny_workload(2, 1996);
    let total_ops: u64 = w.days.iter().map(|d| d.ops.len() as u64).sum();
    assert!(total_ops > 20, "workload too small to be interesting");
    let clean = replay(&w, &params, AllocPolicy::Realloc, ReplayOptions::default()).unwrap();
    for at in 1..=total_ops {
        let crashed = replay(
            &w,
            &params,
            AllocPolicy::Realloc,
            ReplayOptions {
                crash_after_ops: at,
                crash_damage_seed: 0xBAD ^ at,
                ..ReplayOptions::default()
            },
        )
        .unwrap();
        let c = crashed.crash.as_ref().expect("crash fired");
        assert_eq!(c.at_op, at);
        assert!(
            c.repair.files_removed.is_empty(),
            "crash at op {at} lost files"
        );
        assert!(check(&crashed.fs).is_empty());
        assert_eq!(
            crashed.daily, clean.daily,
            "daily series diverged at op {at}"
        );
        assert_eq!(
            crashed.fs.aggregate_layout(),
            clean.fs.aggregate_layout(),
            "final layout diverged crashing at op {at}"
        );
    }
}

#[test]
fn crash_then_checkpoint_then_resume_converges() {
    // The full robustness pipeline in one run: a power cut mid-replay is
    // repaired, a checkpoint is cut afterwards, and a second process
    // resumes from it — landing exactly where the clean run lands.
    let (params, w) = tiny_workload(4, 7);
    let clean = replay(&w, &params, AllocPolicy::Orig, ReplayOptions::default()).unwrap();
    let crashed = replay(
        &w,
        &params,
        AllocPolicy::Orig,
        ReplayOptions {
            crash_after_ops: 9,
            checkpoint_every_days: 2,
            ..ReplayOptions::default()
        },
    )
    .unwrap();
    assert!(crashed.crash.is_some());
    let ck = aging::Checkpoint::from_text(&crashed.checkpoints[0].to_text()).unwrap();
    assert_eq!(ck.day, 1);
    let resumed = resume(
        &w,
        &params,
        AllocPolicy::Orig,
        ReplayOptions::default(),
        &ck,
    )
    .unwrap();
    assert!(check(&resumed.fs).is_empty());
    assert_eq!(&clean.daily[2..], &resumed.daily[..]);
    assert_eq!(clean.fs.aggregate_layout(), resumed.fs.aggregate_layout());
    assert_eq!(clean.live, resumed.live);
}
