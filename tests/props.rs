//! Property-based integration tests: random operation sequences against
//! the file system must preserve every invariant the consistency checker
//! knows about, under both allocation policies.

use ffs_aging::prelude::*;
use ffs_types::{CgIdx, Ino};
use proptest::prelude::*;

/// A scripted operation for the property tests.
#[derive(Clone, Debug)]
enum PropOp {
    Create { dir: u8, size: u64 },
    Remove { pick: u16 },
    Rewrite { pick: u16 },
    Append { pick: u16, bytes: u64 },
    Truncate { pick: u16, frac: u8 },
}

fn op_strategy() -> impl Strategy<Value = PropOp> {
    prop_oneof![
        4 => (0u8..4, 1u64..400 * KB)
            .prop_map(|(dir, size)| PropOp::Create { dir, size }),
        2 => any::<u16>().prop_map(|pick| PropOp::Remove { pick }),
        1 => any::<u16>().prop_map(|pick| PropOp::Rewrite { pick }),
        2 => (any::<u16>(), 1u64..120 * KB)
            .prop_map(|(pick, bytes)| PropOp::Append { pick, bytes }),
        2 => (any::<u16>(), any::<u8>())
            .prop_map(|(pick, frac)| PropOp::Truncate { pick, frac }),
    ]
}

fn apply(fs: &mut Filesystem, live: &mut Vec<Ino>, op: &PropOp, dirs: &[ffs_types::DirId]) {
    match *op {
        PropOp::Create { dir, size } => {
            if let Ok(ino) = fs.create(dirs[dir as usize % dirs.len()], size, 0) {
                live.push(ino);
            }
        }
        PropOp::Remove { pick } => {
            if !live.is_empty() {
                let ino = live.swap_remove(pick as usize % live.len());
                fs.remove(ino).expect("live file removes cleanly");
            }
        }
        PropOp::Rewrite { pick } => {
            if !live.is_empty() {
                let ino = live[pick as usize % live.len()];
                fs.rewrite(ino, 1).expect("live file rewrites cleanly");
            }
        }
        PropOp::Append { pick, bytes } => {
            if !live.is_empty() {
                let ino = live[pick as usize % live.len()];
                // Out-of-space appends are legal; anything else is a bug.
                match fs.append(ino, bytes, 2) {
                    Ok(()) => {}
                    Err(ffs_types::FsError::NoSpace { .. }) => {}
                    Err(e) => panic!("append failed: {e}"),
                }
            }
        }
        PropOp::Truncate { pick, frac } => {
            if !live.is_empty() {
                let ino = live[pick as usize % live.len()];
                let size = fs.file(ino).expect("live").size;
                let new = size * (frac as u64 % 100) / 100;
                fs.truncate(ino, new, 3).expect("truncate cleanly");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// After any operation sequence, the file system is internally
    /// consistent: maps match files, counters match maps, and the
    /// incremental layout aggregate matches a recomputation.
    #[test]
    fn any_op_sequence_leaves_fs_consistent(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        realloc in any::<bool>(),
    ) {
        let policy = if realloc {
            AllocPolicy::Realloc
        } else {
            AllocPolicy::Orig
        };
        let mut fs = Filesystem::new(FsParams::small_test(), policy);
        let dirs = fs.mkdir_per_cg().unwrap();
        let mut live = Vec::new();
        for op in &ops {
            apply(&mut fs, &mut live, op, &dirs);
        }
        assert_consistent(&fs);
        prop_assert_eq!(fs.nfiles(), live.len());
    }

    /// Deleting everything returns the file system to its pristine free
    /// space, no matter the interleaving.
    #[test]
    fn space_is_conserved(
        ops in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        let mut fs =
            Filesystem::new(FsParams::small_test(), AllocPolicy::Realloc);
        let dirs = fs.mkdir_per_cg().unwrap();
        let free0 = fs.free_frags();
        let blocks0 = fs.free_blocks();
        let mut live = Vec::new();
        for op in &ops {
            apply(&mut fs, &mut live, op, &dirs);
        }
        for ino in live {
            fs.remove(ino).unwrap();
        }
        prop_assert_eq!(fs.free_frags(), free0);
        prop_assert_eq!(fs.free_blocks(), blocks0);
        assert_consistent(&fs);
    }

    /// The two policies always agree on *what* is stored (sizes, counts,
    /// utilization) — they may only disagree on *where*.
    #[test]
    fn policies_agree_on_logical_state(
        mut ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        // Partial growth after an out-of-space append may legitimately
        // differ between policies; keep this property about the
        // guaranteed-identical operations.
        ops.retain(|op| !matches!(op, PropOp::Append { .. }));
        let mut results = Vec::new();
        for policy in [AllocPolicy::Orig, AllocPolicy::Realloc] {
            let mut fs = Filesystem::new(FsParams::small_test(), policy);
            let dirs = fs.mkdir_per_cg().unwrap();
            let mut live = Vec::new();
            for op in &ops {
                apply(&mut fs, &mut live, op, &dirs);
            }
            let mut sizes: Vec<u64> = fs.files().map(|f| f.size).collect();
            sizes.sort_unstable();
            results.push((fs.nfiles(), fs.bytes_written(), sizes));
        }
        prop_assert_eq!(&results[0], &results[1]);
    }

    /// Aggregate layout scores always lie in the unit interval and the
    /// size-binned scores partition the live files.
    #[test]
    fn layout_analysis_invariants(
        ops in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        let mut fs =
            Filesystem::new(FsParams::small_test(), AllocPolicy::Orig);
        let dirs = fs.mkdir_per_cg().unwrap();
        let mut live = Vec::new();
        for op in &ops {
            apply(&mut fs, &mut live, op, &dirs);
        }
        let agg = fs.aggregate_layout().score();
        prop_assert!((0.0..=1.0).contains(&agg));
        let bins = layout_by_size(&fs, &size_bins_paper(), |_| true);
        let binned: u64 = bins.iter().map(|b| b.files).sum();
        prop_assert_eq!(binned as usize, fs.nfiles());
        for b in &bins {
            if let Some(s) = b.score() {
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    /// Free-space statistics are consistent with the group maps after any
    /// operation sequence.
    #[test]
    fn free_space_stats_match_counters(
        ops in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        let mut fs =
            Filesystem::new(FsParams::small_test(), AllocPolicy::Realloc);
        let dirs = fs.mkdir_per_cg().unwrap();
        let mut live = Vec::new();
        for op in &ops {
            apply(&mut fs, &mut live, op, &dirs);
        }
        let st = free_space_stats(&fs, 4096);
        prop_assert_eq!(st.free_blocks, fs.free_blocks());
        let from_hist: u64 = st
            .hist
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as u64 + 1) * n as u64)
            .sum();
        prop_assert_eq!(from_hist, st.free_blocks);
        // Per-group block counters agree with a direct map walk.
        for g in 0..fs.ncg() {
            let cg = fs.cg(CgIdx(g));
            let walked = (0..cg.nblocks())
                .filter(|&b| cg.is_block_free(b))
                .count() as u32;
            prop_assert_eq!(walked, cg.free_blocks());
        }
    }
}
