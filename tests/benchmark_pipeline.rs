//! End-to-end benchmark pipeline tests: age a file system, then run the
//! paper's two benchmarks against it and check the physical sanity of the
//! results.

use ffs_aging::prelude::*;
use ffs_types::units::mb_per_sec;

fn aged(policy: AllocPolicy) -> (FsParams, ReplayResult) {
    let params = FsParams::small_test();
    let config = AgingConfig::small_test(12, 1234);
    let w = generate(&config, params.ncg, params.data_capacity_bytes());
    let r = replay(&w, &params, policy, ReplayOptions::default()).unwrap();
    (params, r)
}

fn bench_config() -> SeqBenchConfig {
    SeqBenchConfig {
        total_bytes: 2 * MB,
        ..SeqBenchConfig::default()
    }
}

#[test]
fn sequential_benchmark_runs_on_aged_fs() {
    let (_, r) = aged(AllocPolicy::Realloc);
    let p = run_point(&r.fs, &bench_config(), 32 * KB).unwrap();
    assert_eq!(p.nfiles, 64);
    assert!(p.read_mb_s > 0.2, "read {:.2}", p.read_mb_s);
    assert!(p.write_mb_s > 0.05, "write {:.2}", p.write_mb_s);
    assert!((0.0..=1.0).contains(&p.layout_score()));
}

#[test]
fn throughput_never_exceeds_media_rate() {
    let (_, r) = aged(AllocPolicy::Realloc);
    let media = DiskParams::seagate_32430n().media_mb_per_sec();
    for size in [16 * KB, 64 * KB, 256 * KB, MB] {
        let p = run_point(&r.fs, &bench_config(), size).unwrap();
        assert!(
            p.read_mb_s <= media * 1.01 && p.write_mb_s <= media * 1.01,
            "size {size}: read {:.2}, write {:.2} vs media {media:.2}",
            p.read_mb_s,
            p.write_mb_s
        );
    }
}

#[test]
fn hot_file_benchmark_runs_on_aged_fs() {
    let (_, r) = aged(AllocPolicy::Orig);
    let hot = r.hot_files(5);
    assert!(!hot.is_empty());
    let res = run_hot_files(&r.fs, &hot, &DiskParams::seagate_32430n());
    assert_eq!(res.nfiles, hot.len());
    assert!(res.read_mb_s > 0.0 && res.write_mb_s > 0.0);
    assert!(res.bytes > 0);
}

#[test]
fn raw_device_baselines_are_ordered() {
    // Figure 4's baselines: raw read streams near the media rate, raw
    // write loses rotations and lands well below it.
    let p = DiskParams::seagate_32430n();
    let r = raw_read_throughput(&p, 16 * MB);
    let w = raw_write_throughput(&p, 16 * MB);
    assert!(r.mb_per_sec > w.mb_per_sec);
    assert!(r.mb_per_sec > 0.85 * p.media_mb_per_sec());
    assert!(w.mb_per_sec > 0.3 * p.media_mb_per_sec());
}

#[test]
fn indirect_block_dip_shows_in_timing() {
    // The 104 KB file size (first indirect block, cylinder-group switch)
    // must read slower than 96 KB on a fresh file system — the paper's
    // sharpest feature.
    let fs = Filesystem::new(FsParams::small_test(), AllocPolicy::Realloc);
    let cfg = bench_config();
    let p96 = run_point(&fs, &cfg, 96 * KB).unwrap();
    let p104 = run_point(&fs, &cfg, 104 * KB).unwrap();
    assert!(
        p104.read_mb_s < p96.read_mb_s,
        "96 KB {:.2} vs 104 KB {:.2}",
        p96.read_mb_s,
        p104.read_mb_s
    );
}

#[test]
fn mb_per_sec_is_consistent_with_simulated_time() {
    let mut dev = Device::new(DiskParams::seagate_32430n());
    let t0 = dev.now();
    dev.transfer(IoKind::Read, 1000, MB);
    let elapsed = dev.now() - t0;
    let rate = mb_per_sec(MB, elapsed);
    assert!(rate > 0.0 && rate < 20.0, "rate {rate:.2}");
}
