//! Cross-crate integration tests: workload generation -> replay -> aged
//! file system, exercised through the public facade.

use ffs_aging::prelude::*;

fn small_workload(days: u32, seed: u64) -> (FsParams, Workload) {
    let params = FsParams::small_test();
    let config = AgingConfig::small_test(days, seed);
    let w = generate(&config, params.ncg, params.data_capacity_bytes());
    (params, w)
}

#[test]
fn aging_is_deterministic_end_to_end() {
    let (params, w1) = small_workload(12, 99);
    let (_, w2) = small_workload(12, 99);
    let a = replay(&w1, &params, AllocPolicy::Realloc, ReplayOptions::default()).unwrap();
    let b = replay(&w2, &params, AllocPolicy::Realloc, ReplayOptions::default()).unwrap();
    assert_eq!(a.daily, b.daily);
    assert_eq!(a.fs.nfiles(), b.fs.nfiles());
    // Same layout of every single file.
    for (x, y) in a.fs.files().zip(b.fs.files()) {
        assert_eq!(x, y);
    }
}

#[test]
fn aged_fs_passes_full_consistency_check() {
    let (params, w) = small_workload(15, 3);
    for policy in [AllocPolicy::Orig, AllocPolicy::Realloc] {
        let aged = replay(&w, &params, policy, ReplayOptions::default()).unwrap();
        assert_consistent(&aged.fs);
        assert_eq!(aged.skipped_creates, 0);
    }
}

#[test]
fn policies_see_identical_operation_streams() {
    let (params, w) = small_workload(12, 17);
    let a = replay(&w, &params, AllocPolicy::Orig, ReplayOptions::default()).unwrap();
    let b = replay(&w, &params, AllocPolicy::Realloc, ReplayOptions::default()).unwrap();
    for (x, y) in a.daily.iter().zip(&b.daily) {
        assert_eq!(x.nfiles, y.nfiles, "day {}", x.day);
        assert_eq!(x.bytes_written, y.bytes_written, "day {}", x.day);
    }
    // Same live file sizes, different block placements.
    let mut sizes_a: Vec<u64> = a.fs.files().map(|f| f.size).collect();
    let mut sizes_b: Vec<u64> = b.fs.files().map(|f| f.size).collect();
    sizes_a.sort_unstable();
    sizes_b.sort_unstable();
    assert_eq!(sizes_a, sizes_b);
}

#[test]
fn different_seeds_age_differently() {
    let (params, w1) = small_workload(8, 1);
    let (_, w2) = small_workload(8, 2);
    let a = replay(&w1, &params, AllocPolicy::Orig, ReplayOptions::default()).unwrap();
    let b = replay(&w2, &params, AllocPolicy::Orig, ReplayOptions::default()).unwrap();
    assert_ne!(
        a.daily.last().unwrap().layout_score,
        b.daily.last().unwrap().layout_score
    );
}

#[test]
fn workload_stats_match_replay_accounting() {
    let (params, w) = small_workload(10, 5);
    let stats = workload_stats(&w);
    let aged = replay(&w, &params, AllocPolicy::Orig, ReplayOptions::default()).unwrap();
    assert_eq!(stats.live_at_end as usize, aged.fs.nfiles());
    assert_eq!(stats.bytes_written, aged.fs.bytes_written());
    assert_eq!(
        stats.live_bytes_at_end,
        aged.fs.files().map(|f| f.size).sum::<u64>()
    );
}

#[test]
fn hot_set_shrinks_with_window() {
    let (params, w) = small_workload(15, 9);
    let aged = replay(&w, &params, AllocPolicy::Realloc, ReplayOptions::default()).unwrap();
    let h1 = aged.hot_files(1).len();
    let h5 = aged.hot_files(5).len();
    let hall = aged.hot_files(u32::MAX).len();
    assert!(h1 <= h5 && h5 <= hall);
    assert_eq!(hall, aged.fs.nfiles());
}

#[test]
fn utilization_stays_within_trajectory_bounds() {
    let (params, w) = small_workload(20, 21);
    let aged = replay(&w, &params, AllocPolicy::Orig, ReplayOptions::default()).unwrap();
    for d in &aged.daily {
        assert!(
            d.utilization < 0.97,
            "day {} utilization {:.2}",
            d.day,
            d.utilization
        );
    }
    // The ramp: utilization grows substantially from day 0.
    let first = aged.daily.first().unwrap().utilization;
    let max = aged
        .daily
        .iter()
        .map(|d| d.utilization)
        .fold(0.0f64, f64::max);
    assert!(max > first + 0.2, "no growth: {first:.2} -> {max:.2}");
}
